"""Module/parameter containers: Linear, MLP, and the Module base class."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng


class Module:
    """Base class; discovers parameters through attribute traversal."""

    training: bool = True

    def parameters(self) -> list:
        """All trainable tensors of this module, depth-first, in attribute
        declaration order (stable for optimizer state)."""
        params: list = []
        seen: set = set()

        def collect(obj) -> None:
            if isinstance(obj, Tensor):
                if obj.requires_grad and id(obj) not in seen:
                    seen.add(id(obj))
                    params.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    collect(item)

        collect(self)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for value in vars(self).values():
            if isinstance(value, Module):
                value.train(mode)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def named_parameters(self) -> list:
        """(path, tensor) pairs, depth-first; paths like ``convs.0.weight``."""
        out: list = []
        seen: set = set()

        def collect(obj, prefix: str) -> None:
            if isinstance(obj, Tensor):
                if obj.requires_grad and id(obj) not in seen:
                    seen.add(id(obj))
                    out.append((prefix, obj))
            elif isinstance(obj, Module):
                for name, value in vars(obj).items():
                    collect(value, f"{prefix}.{name}" if prefix else name)
            elif isinstance(obj, (list, tuple)):
                for index, item in enumerate(obj):
                    collect(item, f"{prefix}.{index}")

        collect(self, "")
        return out

    def state_dict(self) -> dict:
        """Copy of all parameters keyed by attribute path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict) -> None:
        """Load parameters saved by :meth:`state_dict` (strict matching)."""
        named = dict(self.named_parameters())
        missing = set(named) - set(state)
        unexpected = set(state) - set(named)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, tensor in named.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {tensor.data.shape}"
                )
            tensor.data = value.copy()

    def save(self, path) -> None:
        """Write the state dict to an ``.npz`` file."""
        np.savez_compressed(path, **self.state_dict())

    def load(self, path) -> None:
        """Load an ``.npz`` written by :meth:`save`."""
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def parameter_bytes(self) -> int:
        """Bytes of all parameters (gradient all-reduce payload)."""
        return sum(p.data.nbytes for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``x @ W + b`` with Glorot-uniform init."""

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True,
                 rng=None) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("dimensions must be positive")
        rng = ensure_rng(rng)
        bound = float(np.sqrt(6.0 / (in_dim + out_dim)))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_dim, out_dim)),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_dim), requires_grad=True) if bias else None
        )
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class MLP(Module):
    """Two-layer perceptron with ReLU (GIN's update function)."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 rng=None) -> None:
        rng = ensure_rng(rng)
        self.fc1 = Linear(in_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn.functional import relu

        return self.fc2(relu(self.fc1(x)))
