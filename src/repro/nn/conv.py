"""GNN layers over sampled blocks: GCN, GIN and GAT convolutions.

Each convolution consumes one :class:`~repro.sampling.subgraph.LayerBlock`
and the source-node features, and produces target-node features. All three
funnel their neighbor aggregation through :func:`repro.nn.functional.
a3_aggregate` — the op whose memory-access pattern the paper's Memory-Aware
kernel optimizes — so the compute cost model applies uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import (
    a3_aggregate,
    edge_softmax,
    gather_rows,
    leaky_relu,
)
from repro.nn.modules import Linear, MLP, Module
from repro.nn.tensor import Tensor
from repro.sampling.subgraph import LayerBlock
from repro.utils.rng import ensure_rng


def _with_self_edges(block: LayerBlock):
    """Edge arrays extended with one self edge per target.

    Valid because a block's sources always begin with its targets, so local
    index ``i < num_dst`` denotes the same node on both sides.
    """
    self_idx = np.arange(block.num_dst, dtype=np.int64)
    edge_src = np.concatenate([block.edge_src, self_idx])
    edge_dst = np.concatenate([block.edge_dst, self_idx])
    return edge_src, edge_dst


class GCNConv(Module):
    """Graph convolution: degree-normalized mean over neighbors + self.

    ``h_u = W * ( (x_u + sum_{v in N(u)} x_v) / (|N(u)| + 1) )`` — the
    sampled-graph form of Kipf & Welling's propagation, with the edge
    weight ``w_uv = 1 / (|N(u)| + 1)`` playing Eq. 1's role.
    """

    def __init__(self, in_dim: int, out_dim: int, rng=None) -> None:
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, block: LayerBlock, x_src: Tensor) -> Tensor:
        edge_src, edge_dst = _with_self_edges(block)
        inv_deg = 1.0 / (block.in_degrees() + 1.0)
        weight = Tensor(inv_deg[edge_dst].astype(np.float32))
        h = a3_aggregate(x_src, edge_src, edge_dst, weight, block.num_dst)
        return self.linear(h)


class GINConv(Module):
    """Graph isomorphism layer: ``MLP((1 + eps) * x_u + sum_v x_v)``."""

    def __init__(self, in_dim: int, out_dim: int, hidden_dim: int | None = None,
                 rng=None) -> None:
        hidden_dim = hidden_dim if hidden_dim is not None else out_dim
        self.mlp = MLP(in_dim, hidden_dim, out_dim, rng=rng)
        self.eps = Tensor(np.zeros(1), requires_grad=True)

    def forward(self, block: LayerBlock, x_src: Tensor) -> Tensor:
        ones = Tensor(np.ones(block.num_edges, dtype=np.float32))
        neigh = a3_aggregate(
            x_src, block.edge_src, block.edge_dst, ones, block.num_dst
        )
        x_dst = x_src.slice_rows(block.num_dst)
        combined = x_dst * (self.eps + 1.0) + neigh
        return self.mlp(combined)


class GATConv(Module):
    """Multi-head graph attention (concatenated heads).

    Per head: scores ``e_uv = LeakyReLU(a_l . z_v + a_r . z_u)`` are
    softmax-normalized over each target's incoming edges (self edge
    included), and the attention coefficients become the ``w_uv`` of the
    A3 aggregation.
    """

    def __init__(self, in_dim: int, head_dim: int, num_heads: int = 8,
                 negative_slope: float = 0.2, rng=None) -> None:
        if num_heads <= 0:
            raise ValueError("num_heads must be positive")
        rng = ensure_rng(rng)
        self.heads = [
            Linear(in_dim, head_dim, bias=False, rng=rng)
            for _ in range(num_heads)
        ]
        scale = float(np.sqrt(1.0 / head_dim))
        self.attn_src = [
            Tensor(rng.uniform(-scale, scale, head_dim), requires_grad=True)
            for _ in range(num_heads)
        ]
        self.attn_dst = [
            Tensor(rng.uniform(-scale, scale, head_dim), requires_grad=True)
            for _ in range(num_heads)
        ]
        self.negative_slope = float(negative_slope)
        self.head_dim = head_dim
        self.num_heads = num_heads

    def forward(self, block: LayerBlock, x_src: Tensor) -> Tensor:
        edge_src, edge_dst = _with_self_edges(block)
        out = None
        for head, a_src, a_dst in zip(self.heads, self.attn_src,
                                      self.attn_dst):
            z = head(x_src)
            s_src = (z * a_src).sum(axis=1)
            s_dst = (z.slice_rows(block.num_dst) * a_dst).sum(axis=1)
            scores = leaky_relu(
                gather_rows(s_src, edge_src) + gather_rows(s_dst, edge_dst),
                self.negative_slope,
            )
            alpha = edge_softmax(scores, edge_dst, block.num_dst)
            h = a3_aggregate(z, edge_src, edge_dst, alpha, block.num_dst)
            out = h if out is None else out.concat_cols(h)
        return out
