"""Minimal deep-learning stack over numpy.

The paper implements FastGL on PyTorch; offline, this subpackage provides
the equivalent substrate: a reverse-mode autograd engine
(:mod:`repro.nn.tensor`), graph-aggregation primitives whose forward and
backward match the paper's Eq. 1 and Eq. 5 (:mod:`repro.nn.functional` —
including the ``A3`` aggregation op the paper exposes as
``A3.forward()``/``A3.backward()``), and the three evaluation models
(GCN, GIN, GAT) built on per-hop sampled blocks.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.functional import (
    a3_aggregate,
    cross_entropy,
    dropout,
    edge_softmax,
    gather_rows,
    log_softmax,
    relu,
    leaky_relu,
    segment_sum,
)
from repro.nn.metrics import accuracy, logits_accuracy, macro_f1
from repro.nn.modules import Linear, Module, MLP
from repro.nn.conv import GCNConv, GINConv, GATConv
from repro.nn.models import GCN, GIN, GAT, build_model
from repro.nn.optim import SGD, Adam

__all__ = [
    "Tensor",
    "no_grad",
    "a3_aggregate",
    "cross_entropy",
    "dropout",
    "edge_softmax",
    "gather_rows",
    "log_softmax",
    "relu",
    "leaky_relu",
    "segment_sum",
    "accuracy",
    "logits_accuracy",
    "macro_f1",
    "Linear",
    "Module",
    "MLP",
    "GCNConv",
    "GINConv",
    "GATConv",
    "GCN",
    "GIN",
    "GAT",
    "build_model",
    "SGD",
    "Adam",
]
