"""Graph-aware autograd operations.

The centrepiece is :func:`a3_aggregate` — the aggregation the paper wraps
as ``A3.forward()`` / ``A3.backward()``:

* forward (Eq. 1):  ``h_u = sum_{v in N(u)} w_uv * x_v``
* backward (Eq. 5): ``dL/dx_v = sum_{u: v in N(u)} w_uv * dL/dh_u`` and
  ``dL/dw_uv = <x_v, dL/dh_u>``.

Edge-wise softmax (GAT attention), segment sums, activations and the loss
round out what the three evaluation models need.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Row gather ``x[index]`` with scatter-add backward."""
    index = np.asarray(index, dtype=np.int64)

    def backward(grad):
        if x.requires_grad:
            full = np.zeros_like(x.data)
            np.add.at(full, index, grad)
            x._accumulate(full)

    return Tensor._from_op(x.data[index], (x,), backward)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets by ``segment_ids``."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out = np.zeros((num_segments,) + x.data.shape[1:], dtype=np.float32)
    np.add.at(out, segment_ids, x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad[segment_ids])

    return Tensor._from_op(out, (x,), backward)


def a3_aggregate(
    x_src: Tensor,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    weight: Tensor,
    num_dst: int,
) -> Tensor:
    """The paper's A3 weighted aggregation (Eq. 1 forward, Eq. 5 backward).

    Parameters
    ----------
    x_src:
        ``(num_src, d)`` source-node features.
    edge_src / edge_dst:
        Local edge endpoints (indices into sources / targets).
    weight:
        ``(num_edges,)`` edge weights ``w_uv`` (may require grad — GAT's
        attention coefficients do).
    num_dst:
        Number of target nodes.
    """
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    if len(edge_src) != len(edge_dst) or len(edge_src) != len(weight.data):
        raise ValueError("edge arrays and weights must share length")
    messages = x_src.data[edge_src] * weight.data[:, None]
    out = np.zeros((num_dst, x_src.data.shape[1]), dtype=np.float32)
    np.add.at(out, edge_dst, messages)

    def backward(grad):
        grad_edges = grad[edge_dst]
        if x_src.requires_grad:
            gx = np.zeros_like(x_src.data)
            np.add.at(gx, edge_src, grad_edges * weight.data[:, None])
            x_src._accumulate(gx)
        if weight.requires_grad:
            gw = (grad_edges * x_src.data[edge_src]).sum(axis=1)
            weight._accumulate(gw)

    return Tensor._from_op(out, (x_src, weight), backward)


def edge_softmax(scores: Tensor, edge_dst: np.ndarray, num_dst: int) -> Tensor:
    """Softmax of edge ``scores`` over each target's incoming edges.

    Numerically stabilized with a per-target max shift. Used for GAT
    attention coefficients.
    """
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    maxima = np.full(num_dst, -np.inf, dtype=np.float32)
    np.maximum.at(maxima, edge_dst, scores.data)
    maxima[~np.isfinite(maxima)] = 0.0  # targets with no edges
    shifted = scores.data - maxima[edge_dst]
    exp = np.exp(shifted)
    denom = np.zeros(num_dst, dtype=np.float32)
    np.add.at(denom, edge_dst, exp)
    denom[denom == 0.0] = 1.0
    alpha = exp / denom[edge_dst]

    def backward(grad):
        if not scores.requires_grad:
            return
        # d softmax: alpha * (grad - sum_over_segment(grad * alpha))
        weighted = grad * alpha
        seg = np.zeros(num_dst, dtype=np.float32)
        np.add.at(seg, edge_dst, weighted)
        scores._accumulate(weighted - alpha * seg[edge_dst])

    return Tensor._from_op(alpha, (scores,), backward)


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._from_op(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    factor = np.where(x.data > 0, 1.0, negative_slope).astype(np.float32)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * factor)

    return Tensor._from_op(x.data * factor, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    neg = x.data <= 0
    out_data = np.where(neg, alpha * (np.exp(x.data) - 1.0), x.data)
    out_data = out_data.astype(np.float32)

    def backward(grad):
        if x.requires_grad:
            slope = np.where(neg, out_data + alpha, 1.0)
            x._accumulate(grad * slope)

    return Tensor._from_op(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool = True, rng=None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout p must be in [0, 1)")
    rng = ensure_rng(rng)
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._from_op(x.data * mask, (x,), backward)


def log_softmax(x: Tensor) -> Tensor:
    """Row-wise log-softmax, numerically stable."""
    shifted = x.data - x.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    out_data = shifted - logsumexp

    def backward(grad):
        if x.requires_grad:
            softmax = np.exp(out_data)
            x._accumulate(grad - softmax * grad.sum(axis=1, keepdims=True))

    return Tensor._from_op(out_data, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``labels`` under ``logits``."""
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) != logits.shape[0]:
        raise ValueError("labels/logits length mismatch")
    logp = log_softmax(logits)
    n = len(labels)
    picked_data = logp.data[np.arange(n), labels]

    def backward(grad):
        if logp.requires_grad:
            full = np.zeros_like(logp.data)
            full[np.arange(n), labels] = -grad / n
            logp._accumulate(full)

    loss = Tensor._from_op(
        np.float32(-picked_data.mean()), (logp,), backward
    )
    return loss
