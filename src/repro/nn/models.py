"""The paper's three evaluation models: GCN, GIN and GAT.

All are built per Section 6.1: 3 layers matching the 3-hop sampling, hidden
width 64 for GCN/GIN, and 8 attention heads of dimension 8 for GAT. A model
consumes a :class:`~repro.sampling.subgraph.SampledSubgraph` plus the
input-node features and emits logits for the seed nodes.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.nn.conv import GATConv, GCNConv, GINConv
from repro.nn.functional import relu, elu
from repro.nn.modules import Module
from repro.nn.tensor import Tensor
from repro.sampling.subgraph import SampledSubgraph
from repro.utils.rng import RngFactory


class BlockwiseModel(Module):
    """Base: one conv per sampled hop, applied deepest-block first."""

    def __init__(self) -> None:
        self.convs: list = []

    def _activation(self, x: Tensor) -> Tensor:
        return relu(x)

    def forward(self, subgraph: SampledSubgraph, x_input: Tensor) -> Tensor:
        if len(subgraph.layers) != len(self.convs):
            raise ConfigError(
                f"model has {len(self.convs)} layers but the subgraph was "
                f"sampled with {len(subgraph.layers)} hops"
            )
        x = x_input
        # The deepest block consumes the input features; each conv shrinks
        # the frontier toward the seeds.
        for i, block in enumerate(reversed(subgraph.layers)):
            x = self.convs[i](block, x)
            if i < len(self.convs) - 1:
                x = self._activation(x)
        return x


class GCN(BlockwiseModel):
    """3-layer GCN, hidden width 64 (paper Section 6.1)."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 num_layers: int = 3, seed: int = 0) -> None:
        super().__init__()
        rngs = RngFactory(seed)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        self.convs = [
            GCNConv(dims[i], dims[i + 1], rng=rngs.child(f"conv{i}"))
            for i in range(num_layers)
        ]


class GIN(BlockwiseModel):
    """3-layer GIN with 2-layer MLP updates, hidden width 64."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 num_layers: int = 3, seed: int = 0) -> None:
        super().__init__()
        rngs = RngFactory(seed)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        self.convs = [
            GINConv(dims[i], dims[i + 1], hidden_dim=hidden_dim,
                    rng=rngs.child(f"conv{i}"))
            for i in range(num_layers)
        ]


class GAT(BlockwiseModel):
    """3-layer GAT: 8 heads x 8 dims hidden (paper Section 6.1)."""

    def __init__(self, in_dim: int, out_dim: int, num_heads: int = 8,
                 head_dim: int = 8, num_layers: int = 3, seed: int = 0) -> None:
        super().__init__()
        rngs = RngFactory(seed)
        hidden = num_heads * head_dim
        self.convs = []
        for i in range(num_layers):
            layer_in = in_dim if i == 0 else hidden
            if i == num_layers - 1:
                # Final layer: single "head" of width out_dim.
                self.convs.append(
                    GATConv(layer_in, out_dim, num_heads=1,
                            rng=rngs.child(f"conv{i}"))
                )
            else:
                self.convs.append(
                    GATConv(layer_in, head_dim, num_heads=num_heads,
                            rng=rngs.child(f"conv{i}"))
                )

    def _activation(self, x: Tensor) -> Tensor:
        return elu(x)


#: Hidden width used by the paper for GCN and GIN.
PAPER_HIDDEN_DIM = 64


def build_model(
    name: str,
    in_dim: int,
    out_dim: int,
    hidden_dim: int = PAPER_HIDDEN_DIM,
    num_layers: int = 3,
    seed: int = 0,
) -> BlockwiseModel:
    """Factory for the paper's models by name ('gcn', 'gin', 'gat')."""
    name = name.lower()
    if name == "gcn":
        return GCN(in_dim, hidden_dim, out_dim, num_layers, seed)
    if name == "gin":
        return GIN(in_dim, hidden_dim, out_dim, num_layers, seed)
    if name == "gat":
        return GAT(in_dim, out_dim, num_layers=num_layers, seed=seed)
    raise ConfigError(f"unknown model {name!r}; expected gcn, gin or gat")
