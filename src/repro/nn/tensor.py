"""Reverse-mode automatic differentiation over numpy arrays.

A deliberately small tape-based engine: each :class:`Tensor` records the
tensors it was computed from and a closure that routes its gradient to
them; ``backward()`` topologically sorts the tape and runs the closures.
Broadcasting is supported by summing gradients back to the operand shape.

Only the operations the GNN models need are implemented — this is a
substrate, not a framework.
"""

from __future__ import annotations

import contextlib

import numpy as np

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Disable tape recording inside the context (inference / evaluation)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an optional gradient tape."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad = None
        self._parents = ()
        self._backward = None

    # -- construction helpers -------------------------------------------------
    @classmethod
    def _from_op(cls, data, parents, backward) -> "Tensor":
        out = cls(data)
        if _grad_enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float32, copy=True)
        else:
            self.grad += grad

    # -- autograd engine -------------------------------------------------------
    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor without grad")
        topo: list = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        if grad is None:
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic -------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._from_op(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._from_op(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1.0)
                )

        return Tensor._from_op(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._from_op(self.data @ other.data, (self, other), backward)

    # -- shape ops -----------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._from_op(self.data.reshape(shape), (self,), backward)

    def transpose(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._from_op(self.data.T, (self,), backward)

    def slice_rows(self, stop: int) -> "Tensor":
        """The first ``stop`` rows (used to peel targets off source blocks)."""
        n = self.shape[0]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                full[:stop] = grad
                self._accumulate(full)

        if stop > n:
            raise IndexError(f"slice_rows({stop}) on {n} rows")
        return Tensor._from_op(self.data[:stop], (self,), backward)

    def concat_cols(self, other: "Tensor") -> "Tensor":
        """Concatenate along the last axis (multi-head outputs)."""
        other = self._coerce(other)
        split = self.shape[-1]

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad[..., :split])
            if other.requires_grad:
                other._accumulate(grad[..., split:])

        return Tensor._from_op(
            np.concatenate([self.data, other.data], axis=-1),
            (self, other),
            backward,
        )

    # -- reductions ------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._from_op(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- pointwise nonlinearities ----------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"
