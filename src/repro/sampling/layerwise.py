"""Layer-wise importance sampling (FastGCN-style).

The paper's Section 7 argues Fused-Map accelerates *any* sampling
algorithm, citing layer-wise/importance samplers [FastGCN, LADIES] among
them — they all need the global->local ID map. This sampler draws a fixed
budget of nodes per layer with degree-proportional probabilities and
connects them to the previous frontier through existing edges, the
FastGCN construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler
from repro.sampling.idmap import FusedIdMap, IdMap
from repro.sampling.subgraph import LayerBlock, SampledSubgraph
from repro.utils.rng import ensure_rng


class LayerWiseSampler(Sampler):
    """FastGCN-style sampler: per layer, sample ``layer_sizes[k]`` nodes
    degree-proportionally and keep edges into the previous frontier.

    Unlike node-wise sampling, the per-layer budget is independent of the
    frontier size, avoiding neighbor explosion — at the cost of possibly
    disconnected targets (handled by the models' self-edges).
    """

    def __init__(
        self,
        graph: CSRGraph,
        layer_sizes,
        idmap: IdMap | None = None,
        device: str = "gpu",
        rng=None,
    ) -> None:
        layer_sizes = tuple(int(s) for s in layer_sizes)
        if not layer_sizes or any(s <= 0 for s in layer_sizes):
            raise SamplingError("layer_sizes must be positive integers")
        if device not in ("gpu", "cpu"):
            raise SamplingError("device must be 'gpu' or 'cpu'")
        self.graph = graph
        self.layer_sizes = layer_sizes
        self.idmap = idmap if idmap is not None else FusedIdMap()
        self.device = device
        self.rng = ensure_rng(rng)
        degrees = graph.degrees.astype(np.float64)
        total = degrees.sum()
        if total <= 0:
            raise SamplingError("graph has no edges to importance-sample")
        self._probs = degrees / total

    def _edges_into(self, frontier: np.ndarray, candidates: np.ndarray):
        """(edge_dst_pos, edge_src_global): candidate->frontier edges that
        exist in the graph."""
        candidate_set = np.sort(np.unique(candidates))
        edge_dst, edge_src = [], []
        for position, node in enumerate(frontier):
            neighbors = self.graph.neighbors(int(node))
            if len(neighbors) == 0:
                continue
            found = np.searchsorted(candidate_set, neighbors)
            found = np.minimum(found, len(candidate_set) - 1)
            keep = candidate_set[found] == neighbors
            kept = neighbors[keep]
            if len(kept):
                edge_dst.append(np.full(len(kept), position,
                                        dtype=np.int64))
                edge_src.append(kept.astype(np.int64))
        if edge_dst:
            return np.concatenate(edge_dst), np.concatenate(edge_src)
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    def sample(self, seeds: np.ndarray) -> SampledSubgraph:
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise SamplingError("seeds must be non-empty")
        if len(np.unique(seeds)) != len(seeds):
            raise SamplingError("seeds must be unique")

        frontier = seeds
        layers = []
        report = None
        draws = 0
        for size in self.layer_sizes:
            size = min(size, self.graph.num_nodes)
            candidates = self.rng.choice(
                self.graph.num_nodes, size=size, replace=False,
                p=self._probs,
            ).astype(np.int64)
            draws += size
            edge_dst, drawn_src = self._edges_into(frontier, candidates)
            result = self.idmap.map(np.concatenate([frontier, drawn_src]))
            report = (result.report if report is None
                      else report + result.report)
            layers.append(LayerBlock(
                dst_global=frontier,
                src_global=result.unique_globals,
                edge_src=result.locals_of_input[len(frontier):],
                edge_dst=edge_dst,
            ))
            frontier = result.unique_globals
        return SampledSubgraph(seeds=seeds, layers=layers,
                               idmap_report=report,
                               num_sampled_edges=draws)
