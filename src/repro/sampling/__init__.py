"""Subgraph sampling: samplers, sampled-subgraph blocks, and the ID map.

The sample phase of each iteration (Fig. 2 of the paper) has two steps:
drawing the subgraph, and the *ID map* — converting every sampled node's
global ID to a consecutive local ID. :mod:`repro.sampling.idmap` implements
both the DGL-style three-kernel ID map (whose per-unique-ID thread
synchronization is the bottleneck the paper identifies) and FastGL's
Fused-Map (Algorithm 2).
"""

from repro.sampling.subgraph import LayerBlock, SampledSubgraph
from repro.sampling.base import Sampler
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.random_walk import RandomWalkSampler
from repro.sampling.idmap import (
    BaselineIdMap,
    CpuIdMap,
    FusedIdMap,
    IdMap,
    IdMapReport,
)

__all__ = [
    "LayerBlock",
    "SampledSubgraph",
    "Sampler",
    "NeighborSampler",
    "RandomWalkSampler",
    "BaselineIdMap",
    "CpuIdMap",
    "FusedIdMap",
    "IdMap",
    "IdMapReport",
]
