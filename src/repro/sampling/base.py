"""Sampler protocol shared by all sampling algorithms."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.config import CostModelConfig, DEFAULT_COST_MODEL
from repro.sampling.subgraph import SampledSubgraph


class Sampler(ABC):
    """Draws one :class:`SampledSubgraph` per mini-batch.

    ``device`` ("gpu" or "cpu") selects the sampling-throughput constant;
    the ID map's own device comes from the injected ID-map strategy.
    """

    device = "gpu"

    @abstractmethod
    def sample(self, seeds: np.ndarray) -> SampledSubgraph:
        """Sample a subgraph rooted at ``seeds``."""

    def modeled_sample_time(
        self,
        subgraph: SampledSubgraph,
        cost: CostModelConfig = DEFAULT_COST_MODEL,
    ) -> float:
        """Seconds for the *draw* part of the sample phase (excl. ID map)."""
        if self.device == "cpu":
            throughput = cost.cpu_sample_edges_per_s
        else:
            throughput = cost.gpu_sample_edges_per_s
        hops = max(1, subgraph.num_layers)
        return (subgraph.num_sampled_edges / throughput
                + hops * cost.sample_hop_overhead_s)

    def modeled_total_sample_time(
        self,
        subgraph: SampledSubgraph,
        cost: CostModelConfig = DEFAULT_COST_MODEL,
    ) -> float:
        """Draw time plus ID-map time — the full sample phase."""
        return (self.modeled_sample_time(subgraph, cost)
                + subgraph.idmap_report.modeled_time(cost))
