"""Sampled-subgraph representation.

A :class:`SampledSubgraph` is the per-mini-batch object all three training
phases consume (paper Fig. 2): the sample phase builds it, the memory-IO
phase loads features for its *input nodes*, and the computation phase runs
one GNN layer per :class:`LayerBlock`.

Blocks follow the message-flow-graph convention: ``layers[0]`` is the first
hop from the seed nodes; the block's ``src_global`` always begins with its
``dst_global`` (targets are sources too, enabling self-connections), and
edges are stored with *local* indices produced by the ID map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sampling.idmap.base import IdMapReport


@dataclass
class LayerBlock:
    """One hop's bipartite block: ``num_dst`` targets aggregate from
    ``num_src`` sources along ``num_edges`` sampled edges."""

    #: Global IDs of target nodes (the previous frontier).
    dst_global: np.ndarray
    #: Global IDs of source nodes; the first ``len(dst_global)`` entries are
    #: the targets themselves.
    src_global: np.ndarray
    #: Edge endpoints as local indices into ``src_global`` / ``dst_global``.
    edge_src: np.ndarray
    edge_dst: np.ndarray

    @property
    def num_dst(self) -> int:
        return len(self.dst_global)

    @property
    def num_src(self) -> int:
        return len(self.src_global)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    def in_degrees(self) -> np.ndarray:
        """Sampled in-degree of every target node (|N(u)| in Eq. 1)."""
        deg = np.zeros(self.num_dst, dtype=np.int64)
        np.add.at(deg, self.edge_dst, 1)
        return deg

    def validate(self) -> None:
        """Structural invariants; raises AssertionError on violation."""
        assert len(self.edge_src) == len(self.edge_dst)
        if self.num_edges:
            assert self.edge_src.min() >= 0
            assert self.edge_src.max() < self.num_src
            assert self.edge_dst.min() >= 0
            assert self.edge_dst.max() < self.num_dst
        assert np.array_equal(self.src_global[: self.num_dst],
                              self.dst_global)

    def structure_bytes(self) -> int:
        """Bytes of topology that must reside on the device (int64 CSR-ish:
        two endpoint arrays plus the node-ID arrays)."""
        return 8 * (2 * self.num_edges + self.num_src + self.num_dst)


@dataclass
class SampledSubgraph:
    """The full k-hop sample for one mini-batch."""

    seeds: np.ndarray
    #: Hop blocks ordered seeds-outward; compute iterates them reversed.
    layers: list
    #: Merged ID-map work accounting across hops.
    idmap_report: IdMapReport
    #: Total neighbor draws performed by the sampler (cost-model input).
    num_sampled_edges: int = 0
    extras: dict = field(default_factory=dict)
    #: Memoized ``np.unique(input_nodes)`` (see :meth:`unique_input_nodes`).
    _unique_input_cache: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def input_nodes(self) -> np.ndarray:
        """Global IDs whose features the memory-IO phase must provide (the
        outermost frontier — sources of the deepest block)."""
        if not self.layers:
            return self.seeds
        return self.layers[-1].src_global

    def unique_input_nodes(self) -> np.ndarray:
        """Sorted unique ``input_nodes``, computed once and cached.

        The match/reorder/cache paths all need the sorted-unique view of
        the same frontier; caching it here means the ``np.unique`` pass
        runs once per subgraph instead of once per consumer. Callers must
        not mutate the returned array.
        """
        if self._unique_input_cache is None:
            self._unique_input_cache = np.unique(
                np.asarray(self.input_nodes, dtype=np.int64)
            )
        return self._unique_input_cache

    @property
    def num_nodes(self) -> int:
        """Unique nodes across the whole subgraph (= outermost frontier,
        since every block's sources contain its targets)."""
        return len(self.input_nodes)

    @property
    def num_edges(self) -> int:
        return sum(block.num_edges for block in self.layers)

    def structure_bytes(self) -> int:
        """Device bytes of all blocks' topology."""
        return sum(block.structure_bytes() for block in self.layers)

    def validate(self) -> None:
        for i, block in enumerate(self.layers):
            block.validate()
            if i == 0:
                assert np.array_equal(block.dst_global, self.seeds)
            else:
                assert np.array_equal(block.dst_global,
                                      self.layers[i - 1].src_global)
