"""Random-walk sampling (PinSAGE-style), used by the paper's Table 7.

Each seed launches ``num_walks`` walks of ``walk_length`` steps; every
visited node becomes a neighbor of the seed, yielding a single-hop star
block per mini-batch. The paper uses walk length 3 (PinSAGE's setting) to
show Match-Reorder also helps under non-uniform samplers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler
from repro.sampling.idmap import FusedIdMap, IdMap
from repro.sampling.subgraph import LayerBlock, SampledSubgraph
from repro.utils.rng import ensure_rng


class RandomWalkSampler(Sampler):
    """Random-walk neighborhood sampler with a pluggable ID map."""

    def __init__(
        self,
        graph: CSRGraph,
        walk_length: int = 3,
        num_walks: int = 10,
        idmap: IdMap | None = None,
        device: str = "gpu",
        rng=None,
    ) -> None:
        if walk_length <= 0 or num_walks <= 0:
            raise SamplingError("walk_length and num_walks must be positive")
        if device not in ("gpu", "cpu"):
            raise SamplingError("device must be 'gpu' or 'cpu'")
        self.graph = graph
        self.walk_length = int(walk_length)
        self.num_walks = int(num_walks)
        self.idmap = idmap if idmap is not None else FusedIdMap()
        self.device = device
        self.rng = ensure_rng(rng)

    def _step(self, current: np.ndarray) -> np.ndarray:
        """Advance every walk one step; zero-degree walkers stay put."""
        deg = self.graph.degrees[current]
        nxt = current.copy()
        movable = deg > 0
        if movable.any():
            offs = (self.rng.random(int(movable.sum()))
                    * deg[movable]).astype(np.int64)
            nxt[movable] = self.graph.indices[
                self.graph.indptr[current[movable]] + offs
            ]
        return nxt

    def sample(self, seeds: np.ndarray) -> SampledSubgraph:
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise SamplingError("seeds must be non-empty")
        if len(np.unique(seeds)) != len(seeds):
            raise SamplingError("seeds must be unique")

        walkers = np.repeat(seeds, self.num_walks)
        owners = np.repeat(np.arange(len(seeds)), self.num_walks)
        visited_src = []
        visited_dst = []
        current = walkers
        for _ in range(self.walk_length):
            current = self._step(current)
            visited_src.append(current.copy())
            visited_dst.append(owners)
        drawn_src = np.concatenate(visited_src)
        edge_dst_pos = np.concatenate(visited_dst)

        result = self.idmap.map(np.concatenate([seeds, drawn_src]))
        block = LayerBlock(
            dst_global=seeds,
            src_global=result.unique_globals,
            edge_src=result.locals_of_input[len(seeds):],
            edge_dst=edge_dst_pos,
        )
        return SampledSubgraph(
            seeds=seeds,
            layers=[block],
            idmap_report=result.report,
            num_sampled_edges=len(drawn_src),
        )
