"""Open-addressing hash table with linear probing.

Three faces of the same structure:

* :class:`ExactOpenAddressTable` — a faithful, per-operation implementation
  of the paper's Algorithm 2 (``InsertID`` with emulated ``atomicCAS``,
  ``Fused_Map`` with emulated ``atomicAdd``). Exact probe counts; used for
  semantics tests and the simulated-concurrency harness. Python-loop speed,
  so callers keep inputs small.
* :class:`VectorOpenAddressTable` — the batch-vectorized insert path: one
  :meth:`~VectorOpenAddressTable.fused_map_insert_batch` call inserts a
  whole ID array with numpy round-resolution instead of one emulated
  atomic at a time, producing the same global->local mapping (local IDs
  in first-occurrence order) as a sequential run of the exact table.
* :func:`estimate_probe_stats` — a vectorized statistical model of the same
  table's probe behaviour, used on the fast path where only the *counts*
  matter for the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

EMPTY = -1


def table_capacity(num_keys: int, load_factor: float = 0.5) -> int:
    """Capacity for ``num_keys`` at the given maximum load factor, rounded
    up to a power of two (the mod hash then reduces to a mask)."""
    if num_keys < 0:
        raise ValueError("num_keys must be non-negative")
    needed = max(2, int(np.ceil(max(1, num_keys) / load_factor)))
    return 1 << int(np.ceil(np.log2(needed)))


@dataclass
class ProbeStats:
    """Exact or estimated probing behaviour of a batch of insertions."""

    inserts: int = 0
    probe_retries: int = 0
    duplicate_hits: int = 0

    @property
    def avg_probes(self) -> float:
        total = self.inserts + self.duplicate_hits
        if total == 0:
            return 0.0
        return self.probe_retries / total


class ExactOpenAddressTable:
    """Algorithm 2's hash table, executed one emulated atomic at a time.

    ``insert_id`` is the paper's ``InsertID``: atomicCAS on the key slot,
    linear probing on conflict. ``fused_map_insert`` is the paper's
    ``Fused_Map``: on a fresh insertion it writes the value slot and
    atomically bumps the shared ``local_id`` counter.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.keys = np.full(self.capacity, EMPTY, dtype=np.int64)
        self.values = np.zeros(self.capacity, dtype=np.int64)
        self.local_id = 0
        self.stats = ProbeStats()
        self.cas_ops = 0
        self.add_ops = 0

    def _hash(self, global_id: int) -> int:
        return int(global_id) % self.capacity

    def _atomic_cas(self, index: int, old: int, new: int) -> int:
        """Emulated atomicCAS on ``keys[index]`` (lines 2-8 of Alg. 2)."""
        self.cas_ops += 1
        current = int(self.keys[index])
        if current == old:
            self.keys[index] = new
        return current

    def insert_id(self, global_id: int) -> tuple:
        """The paper's ``InsertID``: returns ``(hash_index, flag)``.

        ``flag`` is True when the same global ID was already present
        (another "thread" handled it), False when this insertion claimed a
        fresh slot.
        """
        global_id = int(global_id)
        if global_id < 0:
            raise ValueError("global IDs must be non-negative (-1 is EMPTY)")
        index = self._hash(global_id)
        probes = 0
        while True:
            returned = self._atomic_cas(index, EMPTY, global_id)
            if returned == global_id or returned == EMPTY:
                flag = returned != EMPTY
                if flag:
                    self.stats.duplicate_hits += 1
                else:
                    self.stats.inserts += 1
                self.stats.probe_retries += probes
                return index, flag
            # Conflict: another global ID occupies this slot; linear probe.
            probes += 1
            if probes >= self.capacity:
                raise RuntimeError("hash table is full")
            index = (index + 1) % self.capacity

    def atomic_add_local_id(self) -> int:
        """Emulated ``atomicAdd(LocalID, 1)``; returns the *old* value.

        Note: the paper's pseudocode writes ``value = LocalID`` and then
        ``atomicAdd(LocalID, 1)`` as two statements, which would race when
        two fresh insertions interleave between the read and the add. The
        race-free reading (and what a CUDA implementation does) is to use
        atomicAdd's returned old value as the assigned local ID; that is
        what this table implements and what the concurrency harness checks.
        """
        self.add_ops += 1
        old = self.local_id
        self.local_id += 1
        return old

    def fused_map_insert(self, global_id: int) -> None:
        """The paper's ``Fused_Map``: insert + conditional local-ID assign."""
        index, flag = self.insert_id(global_id)
        if not flag:
            self.values[index] = self.atomic_add_local_id()

    def lookup(self, global_id: int) -> int:
        """Translate one global ID (the second kernel). -1 when absent."""
        index = self._hash(global_id)
        for _ in range(self.capacity):
            key = int(self.keys[index])
            if key == global_id:
                return int(self.values[index])
            if key == EMPTY:
                return -1
            index = (index + 1) % self.capacity
        return -1

    def mapping(self) -> dict:
        """The global->local mapping currently stored."""
        occupied = self.keys != EMPTY
        return dict(zip(self.keys[occupied].tolist(),
                        self.values[occupied].tolist()))


class VectorOpenAddressTable(ExactOpenAddressTable):
    """Batch-vectorized fused-map insert over the same table layout.

    :meth:`fused_map_insert_batch` inserts a whole ID array with numpy
    round-resolution: every still-unplaced candidate probes its current
    slot simultaneously, empty slots are claimed by the lowest-rank
    (first-occurrence order) contender, and the losers advance one slot —
    the same contention dynamics as the GPU's warps racing ``atomicCAS``.

    Equivalence contract with a sequential :class:`ExactOpenAddressTable`
    run over the same IDs (the oracle, checked by the property tests):

    * identical global->local ``mapping()`` — fresh keys receive local IDs
      in first-occurrence order;
    * identical ``stats.inserts``, ``stats.duplicate_hits``, ``local_id``
      and ``add_ops``;
    * the key *layout* (which probe slot a displaced key lands in) may be
      a different — but still reachable-by-linear-probing — interleaving,
      exactly as concurrent GPU threads may resolve collisions in any
      arrival order. ``probe_retries``/``cas_ops`` count the probes of
      this layout.
    """

    def fused_map_insert_batch(self, global_ids: np.ndarray) -> None:
        """Vectorized ``Fused_Map`` over ``global_ids`` (duplicates OK)."""
        ids = np.asarray(global_ids, dtype=np.int64).ravel()
        if len(ids) == 0:
            return
        if ids.min() < 0:
            raise ValueError("global IDs must be non-negative (-1 is EMPTY)")
        # Candidates: distinct IDs in first-occurrence order (their claim
        # rank), so fresh local IDs come out in the sequential order.
        uniq, first_idx, inverse = np.unique(
            ids, return_index=True, return_inverse=True
        )
        rank_order = np.argsort(first_idx, kind="stable")
        cand = uniq[rank_order]
        m = len(cand)
        pos = cand % self.capacity
        home = pos.copy()
        probes = np.zeros(m, dtype=np.int64)
        slot = np.full(m, -1, dtype=np.int64)  # final slot per candidate
        fresh = np.zeros(m, dtype=bool)  # claimed an EMPTY slot
        active = np.ones(m, dtype=bool)
        contender_rank = np.empty(self.capacity, dtype=np.int64)
        while active.any():
            idx = np.flatnonzero(active)
            cur = self.keys[pos[idx]]
            # Already present (pre-existing key): retire as duplicate hit.
            found = cur == cand[idx]
            slot[idx[found]] = pos[idx[found]]
            # Empty slot: the lowest-rank contender claims it this round.
            empty = cur == EMPTY
            empty_idx = idx[empty]
            if len(empty_idx):
                contender_rank[pos[empty_idx]] = m
                np.minimum.at(contender_rank, pos[empty_idx], empty_idx)
                won = contender_rank[pos[empty_idx]] == empty_idx
                winners = empty_idx[won]
                self.keys[pos[winners]] = cand[winners]
                slot[winners] = pos[winners]
                fresh[winners] = True
                retired = np.zeros(len(idx), dtype=bool)
                retired[empty] = won
                retired |= found
            else:
                retired = found
            active[idx[retired]] = False
            losers = idx[~retired]
            probes[losers] += 1
            if len(losers) and probes[losers[0]] >= self.capacity:
                raise RuntimeError("hash table is full")
            pos[losers] = (pos[losers] + 1) % self.capacity
        # Fresh keys take consecutive local IDs in first-occurrence order.
        fresh_idx = np.flatnonzero(fresh)
        num_fresh = len(fresh_idx)
        self.values[slot[fresh_idx]] = self.local_id + np.arange(num_fresh)
        self.local_id += num_fresh
        self.add_ops += num_fresh
        # Repeat occurrences of an ID walk its key's displacement in the
        # final layout, like the sequential duplicate probes do.
        displacement = (slot - home) % self.capacity
        occurrences = np.bincount(inverse, minlength=len(uniq))[rank_order]
        dup_walks = int(((occurrences - 1) * displacement).sum())
        self.stats.inserts += num_fresh
        self.stats.duplicate_hits += int(len(ids) - num_fresh)
        self.stats.probe_retries += int(probes.sum()) + dup_walks
        self.cas_ops += int(probes.sum()) + dup_walks + len(ids)

    def lookup_batch(self, global_ids: np.ndarray) -> np.ndarray:
        """Vectorized translate kernel: local IDs, -1 where absent."""
        ids = np.asarray(global_ids, dtype=np.int64).ravel()
        out = np.full(len(ids), -1, dtype=np.int64)
        if len(ids) == 0:
            return out
        pos = ids % self.capacity
        active = np.ones(len(ids), dtype=bool)
        for _ in range(self.capacity):
            idx = np.flatnonzero(active)
            if len(idx) == 0:
                break
            cur = self.keys[pos[idx]]
            found = cur == ids[idx]
            out[idx[found]] = self.values[pos[idx[found]]]
            miss = cur == EMPTY
            active[idx[found | miss]] = False
            losers = idx[~(found | miss)]
            pos[losers] = (pos[losers] + 1) % self.capacity
        return out


def estimate_probe_stats(
    unique_ids: np.ndarray,
    num_duplicates: int,
    capacity: int | None = None,
    load_factor: float = 0.5,
) -> ProbeStats:
    """Statistical probe model for inserting ``unique_ids`` (+duplicates).

    Distinct keys hashing to the same slot form a cluster; with linear
    probing the k-th arrival in a cluster of size c retries ~k times, giving
    ``c*(c-1)/2`` retries per cluster. Duplicate insertions of a key travel
    the same displacement as the key itself, approximated by the average
    displacement. Ignores inter-cluster coalescing — a slight undercount at
    load factors <= 0.5, which is how the tables here are sized.
    """
    unique_ids = np.asarray(unique_ids, dtype=np.int64)
    if capacity is None:
        capacity = table_capacity(len(unique_ids), load_factor)
    slots = unique_ids % capacity
    counts = np.bincount(slots % capacity, minlength=1)
    counts = counts[counts > 1].astype(np.float64)
    cluster_retries = float((counts * (counts - 1) / 2).sum())
    inserts = len(unique_ids)
    avg_probe = cluster_retries / max(1, inserts)
    dup_retries = num_duplicates * avg_probe
    return ProbeStats(
        inserts=inserts,
        probe_retries=int(round(cluster_retries + dup_retries)),
        duplicate_hits=int(num_duplicates),
    )
