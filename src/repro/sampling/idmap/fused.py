"""Fused-Map (the paper's Algorithm 2).

Hash-table construction and local-ID assignment happen in *one* kernel:
each thread atomicCAS-inserts its global ID; the thread that wins a fresh
slot allocates the local ID with a single atomicAdd. No synchronization
events at all. A second kernel translates the input IDs.

Two implementations:

* the fast path (:meth:`FusedIdMap.map`) — vectorized mapping plus the
  statistical probe model, for the samplers' hot loop;
* :func:`simulate_concurrent_fused_map` — an explicit thread-interleaving
  executor over :class:`ExactOpenAddressTable`, used by tests to verify the
  lock-free invariants the paper argues for (unique consecutive local IDs
  under *any* interleaving, idempotent duplicate insertion).
"""

from __future__ import annotations

import numpy as np

from repro.sampling.idmap.base import (
    IdMap,
    IdMapReport,
    MapResult,
    first_occurrence_unique,
    record_idmap_metrics,
)
from repro.sampling.idmap.hash_table import (
    ExactOpenAddressTable,
    estimate_probe_stats,
    table_capacity,
)
from repro.utils.rng import ensure_rng


class FusedIdMap(IdMap):
    """FastGL's fused, synchronization-free GPU ID map."""

    device = "gpu"

    def __init__(self, load_factor: float = 0.5) -> None:
        if not 0.0 < load_factor <= 0.9:
            raise ValueError("load_factor must be in (0, 0.9]")
        self.load_factor = float(load_factor)

    def map(self, ids: np.ndarray) -> MapResult:
        ids = np.asarray(ids, dtype=np.int64)
        unique, inverse = first_occurrence_unique(ids)
        capacity = table_capacity(len(unique), self.load_factor)
        probes = estimate_probe_stats(
            unique, num_duplicates=len(ids) - len(unique), capacity=capacity
        )
        report = IdMapReport(
            num_input_ids=len(ids),
            num_unique=len(unique),
            cas_ops=len(ids),
            probe_retries=probes.probe_retries,
            add_ops=len(unique),  # one atomicAdd per fresh local ID
            sync_events=0,
            lookups=len(ids),
            kernel_launches=2,  # fused construct+assign, then translate
            device="gpu",
        )
        record_idmap_metrics("fused", report)
        return MapResult(unique_globals=unique, locals_of_input=inverse,
                         report=report)


def _fused_map_thread(table: ExactOpenAddressTable, ids) -> "generator":
    """One emulated thread running Algorithm 2 over its assigned IDs.

    Yields once before every shared-state atomic operation, so the
    scheduler in :func:`simulate_concurrent_fused_map` can interleave
    threads between (not within) atomic transactions — exactly the
    granularity at which a GPU interleaves them.
    """
    for global_id in ids:
        global_id = int(global_id)
        index = table._hash(global_id)
        probes = 0
        while True:
            yield  # about to execute one atomicCAS
            returned = table._atomic_cas(index, -1, global_id)
            if returned == global_id or returned == -1:
                fresh = returned == -1
                if fresh:
                    table.stats.inserts += 1
                else:
                    table.stats.duplicate_hits += 1
                table.stats.probe_retries += probes
                if fresh:
                    yield  # about to execute the atomicAdd
                    table.values[index] = table.atomic_add_local_id()
                break
            probes += 1
            if probes >= table.capacity:
                raise RuntimeError("hash table is full")
            index = (index + 1) % table.capacity


def simulate_concurrent_fused_map(
    ids: np.ndarray,
    num_threads: int = 8,
    rng=None,
) -> ExactOpenAddressTable:
    """Execute Algorithm 2 under a random atomic-level thread interleaving.

    The input IDs are dealt round-robin to ``num_threads`` emulated threads.
    A random scheduler repeatedly picks a live thread and advances it by one
    atomic operation (one atomicCAS or one atomicAdd), so races between a
    thread's CAS and another's probe/assignment are genuinely explored.

    Returns the resulting table; callers assert on
    :meth:`ExactOpenAddressTable.mapping` that every distinct input ID got a
    unique local ID and local IDs are consecutive from zero — the invariant
    the paper's lock-free design must uphold under *any* interleaving.
    """
    ids = np.asarray(ids, dtype=np.int64)
    rng = ensure_rng(rng)
    capacity = table_capacity(len(np.unique(ids))) if len(ids) else 2
    table = ExactOpenAddressTable(capacity)
    threads = [
        _fused_map_thread(table, ids[t::num_threads])
        for t in range(num_threads)
    ]
    live = list(range(num_threads))
    while live:
        pick = int(rng.integers(0, len(live)))
        t = live[pick]
        try:
            next(threads[t])
        except StopIteration:
            live.pop(pick)
    return table
