"""Baseline ID maps: the DGL-style GPU pipeline and a CPU map.

The DGL-style map (paper Fig. 4) runs three kernels:

1. **construct** — every thread atomically inserts its global ID into the
   hash table (atomicCAS + linear probing);
2. **assign** — local IDs are computed for the unique keys; concurrent
   threads racing on the same global ID must synchronize so each unique ID
   is counted exactly once — one synchronization event per unique ID, the
   overhead Fused-Map removes;
3. **translate** — every thread looks its global ID up.

Functionally the mapping is identical to Fused-Map's; only the counted
device work differs.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.idmap.base import (
    IdMap,
    IdMapReport,
    MapResult,
    first_occurrence_unique,
    record_idmap_metrics,
)
from repro.sampling.idmap.hash_table import estimate_probe_stats, table_capacity


class BaselineIdMap(IdMap):
    """DGL-style three-kernel GPU ID map with per-unique-ID syncs."""

    device = "gpu"

    def __init__(self, load_factor: float = 0.5) -> None:
        if not 0.0 < load_factor <= 0.9:
            raise ValueError("load_factor must be in (0, 0.9]")
        self.load_factor = float(load_factor)

    def map(self, ids: np.ndarray) -> MapResult:
        ids = np.asarray(ids, dtype=np.int64)
        unique, inverse = first_occurrence_unique(ids)
        capacity = table_capacity(len(unique), self.load_factor)
        probes = estimate_probe_stats(
            unique, num_duplicates=len(ids) - len(unique), capacity=capacity
        )
        report = IdMapReport(
            num_input_ids=len(ids),
            num_unique=len(unique),
            cas_ops=len(ids),
            probe_retries=probes.probe_retries,
            add_ops=0,
            sync_events=len(unique),
            lookups=len(ids),
            kernel_launches=3,
            device="gpu",
        )
        record_idmap_metrics("baseline", report)
        return MapResult(unique_globals=unique, locals_of_input=inverse,
                         report=report)


class CpuIdMap(IdMap):
    """Host-side ID map (PyG performs the whole sample phase on CPU)."""

    device = "cpu"

    def map(self, ids: np.ndarray) -> MapResult:
        ids = np.asarray(ids, dtype=np.int64)
        unique, inverse = first_occurrence_unique(ids)
        report = IdMapReport(
            num_input_ids=len(ids),
            num_unique=len(unique),
            kernel_launches=0,
            device="cpu",
        )
        record_idmap_metrics("cpu", report)
        return MapResult(unique_globals=unique, locals_of_input=inverse,
                         report=report)
