"""ID-map implementations (global node ID -> consecutive local ID).

* :class:`BaselineIdMap` — the DGL-style three-kernel pipeline of the
  paper's Fig. 4: build hash table, assign local IDs (requires thread
  synchronization per unique ID), translate.
* :class:`FusedIdMap` — FastGL's Fused-Map (Algorithm 2): construction and
  local-ID assignment fused into one kernel using atomicCAS + atomicAdd,
  with zero synchronization events.
* :class:`CpuIdMap` — a host-side map (PyG-style).

All three produce identical mappings; they differ only in the counted
device work, which the cost model converts to modeled seconds.
"""

from repro.sampling.idmap.base import IdMap, IdMapReport, MapResult
from repro.sampling.idmap.baseline import BaselineIdMap, CpuIdMap
from repro.sampling.idmap.fused import FusedIdMap

__all__ = [
    "IdMap",
    "IdMapReport",
    "MapResult",
    "BaselineIdMap",
    "CpuIdMap",
    "FusedIdMap",
]
