"""Shared ID-map interface and work accounting."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.config import CostModelConfig, DEFAULT_COST_MODEL
from repro.obs import get_registry


@dataclass(frozen=True)
class IdMapReport:
    """Counted device work of one (or several, when summed) ID maps."""

    num_input_ids: int = 0
    num_unique: int = 0
    #: atomicCAS executions (hash-table key insertions, incl. duplicates).
    cas_ops: int = 0
    #: Extra CAS retries from linear probing past occupied slots.
    probe_retries: int = 0
    #: atomicAdd executions (Fused-Map local-ID allocation).
    add_ops: int = 0
    #: Thread-synchronization events (baseline step-2; zero for Fused-Map).
    sync_events: int = 0
    #: Hash-table reads in the translate kernel.
    lookups: int = 0
    kernel_launches: int = 0
    #: "gpu" or "cpu"; decides which throughput constants apply.
    device: str = "gpu"

    def __add__(self, other: "IdMapReport") -> "IdMapReport":
        if self.device != other.device:
            raise ValueError("cannot sum reports from different devices")
        return IdMapReport(
            num_input_ids=self.num_input_ids + other.num_input_ids,
            num_unique=self.num_unique + other.num_unique,
            cas_ops=self.cas_ops + other.cas_ops,
            probe_retries=self.probe_retries + other.probe_retries,
            add_ops=self.add_ops + other.add_ops,
            sync_events=self.sync_events + other.sync_events,
            lookups=self.lookups + other.lookups,
            kernel_launches=self.kernel_launches + other.kernel_launches,
            device=self.device,
        )

    def modeled_time(self, cost: CostModelConfig = DEFAULT_COST_MODEL) -> float:
        """Seconds of ID-map work under the calibrated cost model."""
        if self.device == "cpu":
            return self.num_input_ids / cost.cpu_idmap_ids_per_s
        atomic_ops = self.cas_ops + self.probe_retries + self.add_ops
        return (
            self.kernel_launches * cost.kernel_launch_s
            + atomic_ops / cost.atomic_ops_per_s
            + self.sync_events * cost.sync_cost_per_unique_s
            + self.lookups / cost.table_lookups_per_s
        )


def record_idmap_metrics(kind: str, report: "IdMapReport") -> None:
    """Report one ID-map invocation's counted work to the registry.

    ``kind`` labels the implementation ("baseline", "fused", "cpu").
    Probe length is the average linear-probe displacement per insertion —
    the open-addressing collision signal the paper's Fused-Map analysis
    (Table 8) is built on.
    """
    registry = get_registry()
    if not registry.enabled:
        return
    labels = {"idmap": kind}
    registry.counter(
        "repro_idmap_ids_total", "Input IDs mapped (with duplicates)",
    ).labels(**labels).inc(report.num_input_ids)
    registry.counter(
        "repro_idmap_unique_total", "Unique IDs assigned local slots",
    ).labels(**labels).inc(report.num_unique)
    registry.counter(
        "repro_idmap_cas_ops_total", "atomicCAS executions",
    ).labels(**labels).inc(report.cas_ops)
    registry.counter(
        "repro_idmap_probe_retries_total",
        "Hash-table collisions (linear-probe retries past occupied slots)",
    ).labels(**labels).inc(report.probe_retries)
    registry.counter(
        "repro_idmap_sync_events_total",
        "Thread-synchronization events (zero for Fused-Map)",
    ).labels(**labels).inc(report.sync_events)
    if report.cas_ops > 0:
        registry.histogram(
            "repro_idmap_probe_length",
            "Average probe displacement per hash-table insertion",
            buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 4, 8),
        ).labels(**labels).observe(report.probe_retries / report.cas_ops)


@dataclass
class MapResult:
    """Output of one ID map invocation.

    ``unique_globals[local]`` is the global ID of local node ``local``;
    ``locals_of_input[i]`` is the local ID assigned to ``input_ids[i]``.
    """

    unique_globals: np.ndarray
    locals_of_input: np.ndarray
    report: IdMapReport


def first_occurrence_unique(ids: np.ndarray) -> tuple:
    """``(unique, inverse)`` with unique ordered by first occurrence.

    This is the mapping a deterministic sequential ID map produces; all GPU
    variants here emit the same mapping (the concurrency harness in
    :mod:`repro.sampling.idmap.fused` demonstrates that *any* interleaving
    yields a valid bijection, merely a permuted one).
    """
    ids = np.asarray(ids, dtype=np.int64)
    unique_sorted, first_idx, inverse_sorted = np.unique(
        ids, return_index=True, return_inverse=True
    )
    order = np.argsort(first_idx, kind="stable")
    unique = unique_sorted[order]
    # rank[k] = local id of unique_sorted[k]
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order))
    inverse = rank[inverse_sorted]
    return unique, inverse


class IdMap(ABC):
    """An ID-map strategy; stateless apart from configuration."""

    device = "gpu"

    @abstractmethod
    def map(self, ids: np.ndarray) -> MapResult:
        """Map ``ids`` (with duplicates) to consecutive local IDs."""
