"""Uniform k-hop neighbor sampling (the paper's default workload).

Per hop, every frontier node keeps all neighbors when its degree is at most
the fanout, and otherwise draws ``fanout`` distinct neighbors uniformly
without replacement — GraphSAGE/DGL semantics. The evaluation setup of the
paper is 3-hop with fanouts (5, 10, 15).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler
from repro.sampling.idmap import FusedIdMap, IdMap
from repro.sampling.subgraph import LayerBlock, SampledSubgraph
from repro.utils.rng import ensure_rng

_CHUNK_ROWS = 8192


def _draw_without_replacement(deg, fanout, rng):
    """For rows with ``deg > fanout``: pick ``fanout`` distinct offsets in
    ``[0, deg)`` per row. Returns an ``(len(deg), fanout)`` offset matrix.

    Rows are processed in degree-sorted chunks so the random matrix width
    is each chunk's max degree, keeping memory bounded on skewed graphs.
    """
    n = len(deg)
    out = np.empty((n, fanout), dtype=np.int64)
    order = np.argsort(deg, kind="stable")
    sorted_deg = deg[order]
    for start in range(0, n, _CHUNK_ROWS):
        rows = order[start:start + _CHUNK_ROWS]
        chunk_deg = sorted_deg[start:start + _CHUNK_ROWS]
        width = int(chunk_deg[-1])
        keys = rng.random((len(rows), width))
        # Push out-of-degree columns past any valid key so argpartition
        # never selects them (valid keys are < 1.0).
        cols = np.arange(width)
        keys += (cols[None, :] >= chunk_deg[:, None]) * 2.0
        picks = np.argpartition(keys, fanout - 1, axis=1)[:, :fanout]
        out[rows] = picks
    return out


class NeighborSampler(Sampler):
    """Uniform neighbor sampler with a pluggable ID map and device.

    Parameters
    ----------
    graph:
        The full graph (host-resident; the sampler reads adjacency rows).
    fanouts:
        Neighbors to draw per hop, ``fanouts[0]`` being the hop from the
        seed nodes. One GNN layer per entry.
    idmap:
        ID-map strategy (:class:`FusedIdMap` for FastGL,
        :class:`BaselineIdMap` for DGL, :class:`CpuIdMap` for PyG).
    device:
        "gpu" or "cpu" — selects the draw-throughput constant.
    """

    def __init__(
        self,
        graph: CSRGraph,
        fanouts,
        idmap: IdMap | None = None,
        device: str = "gpu",
        rng=None,
    ) -> None:
        fanouts = tuple(int(f) for f in fanouts)
        if not fanouts or any(f <= 0 for f in fanouts):
            raise SamplingError("fanouts must be a non-empty tuple of "
                                "positive integers")
        if device not in ("gpu", "cpu"):
            raise SamplingError("device must be 'gpu' or 'cpu'")
        self.graph = graph
        self.fanouts = fanouts
        self.idmap = idmap if idmap is not None else FusedIdMap()
        self.device = device
        self.rng = ensure_rng(rng)

    def _sample_hop(self, frontier: np.ndarray, fanout: int):
        """One hop: returns (edge_dst_pos, drawn_src_global)."""
        graph = self.graph
        deg = graph.degrees[frontier]
        small = deg <= fanout
        parts_dst = []
        parts_src = []

        small_nodes = frontier[small]
        if len(small_nodes):
            small_deg = deg[small]
            # Gather each small node's full row.
            row_starts = graph.indptr[small_nodes]
            total = int(small_deg.sum())
            if total:
                offsets = np.repeat(row_starts, small_deg)
                # within-row offset: 0..deg-1 per node
                within = np.arange(total) - np.repeat(
                    np.concatenate([[0], np.cumsum(small_deg)[:-1]]), small_deg
                )
                parts_src.append(graph.indices[offsets + within])
                parts_dst.append(
                    np.repeat(np.flatnonzero(small), small_deg)
                )

        large_pos = np.flatnonzero(~small)
        if len(large_pos):
            large_nodes = frontier[large_pos]
            large_deg = deg[large_pos]
            picks = _draw_without_replacement(large_deg, fanout, self.rng)
            addr = self.graph.indptr[large_nodes][:, None] + picks
            parts_src.append(self.graph.indices[addr.ravel()])
            parts_dst.append(np.repeat(large_pos, fanout))

        if parts_src:
            edge_dst = np.concatenate(parts_dst)
            edge_src = np.concatenate(parts_src)
        else:
            edge_dst = np.empty(0, dtype=np.int64)
            edge_src = np.empty(0, dtype=np.int64)
        return edge_dst.astype(np.int64), edge_src.astype(np.int64)

    def sample(self, seeds: np.ndarray) -> SampledSubgraph:
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise SamplingError("seeds must be non-empty")
        if len(np.unique(seeds)) != len(seeds):
            raise SamplingError("seeds must be unique")

        layers = []
        report = None
        frontier = seeds
        total_draws = 0
        for fanout in self.fanouts:
            edge_dst_pos, drawn_src = self._sample_hop(frontier, fanout)
            total_draws += len(drawn_src)
            # Map frontier-first so targets occupy the leading local IDs.
            result = self.idmap.map(np.concatenate([frontier, drawn_src]))
            report = result.report if report is None else report + result.report
            src_global = result.unique_globals
            edge_src_local = result.locals_of_input[len(frontier):]
            layers.append(
                LayerBlock(
                    dst_global=frontier,
                    src_global=src_global,
                    edge_src=edge_src_local,
                    edge_dst=edge_dst_pos,
                )
            )
            frontier = src_global
        return SampledSubgraph(
            seeds=seeds,
            layers=layers,
            idmap_report=report,
            num_sampled_edges=total_draws,
        )
