"""Wall-clock benchmark CLI — the repo's perf trajectory file.

Usage::

    python -m repro.bench                      # all kernels, both sizes
    python -m repro.bench --quick              # small sizes (CI smoke)
    python -m repro.bench match_degree_matrix  # one kernel
    python -m repro.bench --legacy             # also time legacy impls
    python -m repro.bench --quick \\
        --check-baseline benchmarks/results/bench_baseline.json

Writes ``BENCH_repro.json``: per-kernel wall-clock times (best of N),
deterministic work counters, and speedups against the kept reference
implementations (the legacy ``np.intersect1d`` match loop and the exact
per-operation hash table).

The baseline gate is machine-independent by construction: it pins the
seeded *work counters* exactly (any drift is a behavioral change) and
puts conservative *floors* under the vectorized-vs-reference speedups
(a real de-vectorization regression collapses the speedup by an order
of magnitude; machine noise does not). Absolute seconds are recorded
for the trajectory but never gated.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.bench.kernels import KERNELS, REFERENCE_SIZES, SIZES


def run_bench(kernels=None, quick: bool = False, medium: bool = False,
              repeats: int = 3, seed: int = 0, legacy: bool = False) -> dict:
    """Run the selected kernels; returns the BENCH document.

    Size tiers nest: ``--quick`` runs ``small`` only, ``--medium`` adds
    the ``medium`` sizes (the acceptance sizes of the blocked-reorder
    and IPC-bytes gates — 256 batches x 4k nodes — kept cheap enough for
    CI), the default runs everything a kernel defines. Kernels without a
    given tier are simply skipped at it.
    """
    names = list(kernels) if kernels else list(KERNELS)
    if quick:
        sizes = ("small",)
    elif medium:
        sizes = ("small", "medium")
    else:
        sizes = ("small", "medium", "large")
    records = []
    for name in names:
        fn = KERNELS[name]
        for size in sizes:
            if size not in SIZES[name]:
                continue
            records.append(fn(size, repeats, seed))
    if legacy:
        from repro.core.reorder import match_degree_matrix_legacy
        from repro.bench.kernels import _node_sets, _record, _time
        if "match_degree_matrix" in names:
            for size in sizes:
                if size not in REFERENCE_SIZES["match_degree_matrix"]:
                    continue
                params = SIZES["match_degree_matrix"][size]
                node_sets = _node_sets(params, seed)
                times = _time(
                    lambda: match_degree_matrix_legacy(node_sets),
                    min(repeats, 2),
                )
                records.append(_record("match_degree_matrix_legacy", size,
                                       params, times, {}))
    return {
        "version": 1,
        "quick": bool(quick),
        "medium": bool(medium),
        "seed": int(seed),
        "repeats": int(repeats),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernels": records,
    }


def flatten_bench(doc: dict) -> dict:
    """``kernel/size:field`` -> number, for gating and diffing."""
    flat = {}
    for record in doc.get("kernels", []):
        prefix = f"{record['kernel']}/{record['size']}"
        flat[f"{prefix}:best_s"] = float(record["best_s"])
        flat[f"{prefix}:mean_s"] = float(record["mean_s"])
        for key in ("speedup_vs_legacy", "speedup_vs_exact",
                    "legacy_s", "exact_s"):
            if key in record:
                flat[f"{prefix}:{key}"] = float(record[key])
        for key, value in record.get("work", {}).items():
            flat[f"{prefix}:work.{key}"] = float(value)
    return flat


def check_bench(doc: dict, baseline: dict) -> list:
    """Violations of ``baseline`` in the bench document.

    Baseline entries support ``{"min": x}`` / ``{"max": x}`` floors and
    ceilings (used for speedups) and exact-or-tolerance values
    (``{"value": v, "tolerance": t}``, tolerance defaulting to the
    document's ``default_tolerance``, itself defaulting to 0 — work
    counters are bit-deterministic).
    """
    flat = flatten_bench(doc)
    default_tol = float(baseline.get("default_tolerance", 0.0))
    violations = []
    for name, entry in baseline.get("metrics", {}).items():
        if name not in flat:
            violations.append({"metric": name, "reason": "missing"})
            continue
        actual = flat[name]
        if "min" in entry and actual < float(entry["min"]):
            violations.append({
                "metric": name, "reason": "below-min",
                "actual": actual, "min": float(entry["min"]),
            })
        if "max" in entry and actual > float(entry["max"]):
            violations.append({
                "metric": name, "reason": "above-max",
                "actual": actual, "max": float(entry["max"]),
            })
        if "value" in entry:
            expected = float(entry["value"])
            tolerance = float(entry.get("tolerance", default_tol))
            drift = abs(actual - expected) / max(abs(expected), 1e-12)
            if drift > tolerance:
                violations.append({
                    "metric": name, "reason": "drift",
                    "expected": expected, "actual": actual,
                    "drift": drift, "tolerance": tolerance,
                })
    return violations


def format_violation(violation: dict) -> str:
    reason = violation["reason"]
    if reason == "missing":
        return f"MISSING {violation['metric']}"
    if reason == "below-min":
        return (f"BELOW   {violation['metric']}: {violation['actual']:g} "
                f"< min {violation['min']:g}")
    if reason == "above-max":
        return (f"ABOVE   {violation['metric']}: {violation['actual']:g} "
                f"> max {violation['max']:g}")
    return (f"DRIFT   {violation['metric']}: {violation['expected']:g} -> "
            f"{violation['actual']:g} ({violation['drift']:+.1%} vs "
            f"tolerance {violation['tolerance']:.1%})")


def build_bench_baseline(doc: dict, speedup_floor_fraction: float = 0.4,
                         ) -> dict:
    """A gate baseline from a bench run: exact work counters + speedup
    floors at ``speedup_floor_fraction`` of the measured speedup (slack
    for slower CI machines; a de-vectorization still trips it)."""
    flat = flatten_bench(doc)
    metrics = {}
    for name, value in sorted(flat.items()):
        if name.endswith("work.ipc_reduction"):
            # The zero-copy transport gate: byte arithmetic, not wall
            # clock, so the measured reduction is machine-independent —
            # but pickle framing can shift a little across Python
            # versions, so it gets a floor (never below the accepted
            # 10x) instead of an exact pin.
            metrics[name] = {
                "min": round(max(10.0, value * speedup_floor_fraction), 2)
            }
        elif ":work." in name and name.endswith("_bytes"):
            # Raw transport byte counts drift with pickle framing
            # details; the gated quantity is the reduction above.
            continue
        elif ":work." in name:
            metrics[name] = {"value": value}
        elif ":speedup_vs_" in name:
            metrics[name] = {
                "min": round(max(1.5, value * speedup_floor_fraction), 2)
            }
    return {"default_tolerance": 0.0, "metrics": metrics}


def _print_table(doc: dict) -> None:
    header = (f"{'kernel':24s} {'size':6s} {'best_s':>10s} "
              f"{'mean_s':>10s} {'speedup':>9s}")
    print(header)
    print("-" * len(header))
    for record in doc["kernels"]:
        speedup = record.get("speedup_vs_legacy",
                             record.get("speedup_vs_exact"))
        speedup_text = f"{speedup:8.1f}x" if speedup else f"{'-':>9s}"
        print(f"{record['kernel']:24s} {record['size']:6s} "
              f"{record['best_s']:10.4f} {record['mean_s']:10.4f} "
              f"{speedup_text}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time the hot kernels and write BENCH_repro.json.",
    )
    parser.add_argument("kernels", nargs="*",
                        help=f"kernel names (default: all of "
                             f"{sorted(KERNELS)})")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes only (CI smoke)")
    parser.add_argument("--medium", action="store_true",
                        help="small + medium sizes (CI perf gate: "
                             "includes the 256x4k reorder and the "
                             "jobs=4 IPC-bytes acceptance workloads)")
    parser.add_argument("--legacy", action="store_true",
                        help="also record the legacy reference "
                             "implementations as standalone entries")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per kernel (default 3; "
                             "best is reported)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--out", default="BENCH_repro.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--list", action="store_true",
                        help="list kernels and exit")
    parser.add_argument("--check-baseline", metavar="PATH", default=None,
                        help="gate work counters and speedup floors "
                             "against a baseline JSON")
    parser.add_argument("--write-baseline", metavar="PATH", default=None,
                        help="write a fresh gate baseline from this run")
    args = parser.parse_args(argv)

    if args.list:
        for name in KERNELS:
            print(f"{name:24s} sizes: {sorted(SIZES[name])}")
        return 0

    unknown = [k for k in args.kernels if k not in KERNELS]
    if unknown:
        parser.error(f"unknown kernel(s): {unknown}; "
                     f"available: {sorted(KERNELS)}")

    doc = run_bench(kernels=args.kernels, quick=args.quick,
                    medium=args.medium, repeats=args.repeats,
                    seed=args.seed, legacy=args.legacy)
    _print_table(doc)
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {args.out} ({len(doc['kernels'])} kernel timings)")

    if args.write_baseline:
        baseline = build_bench_baseline(doc)
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline: {args.write_baseline} "
              f"({len(baseline['metrics'])} gated metrics)")

    if args.check_baseline:
        try:
            with open(args.check_baseline) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"no baseline at {args.check_baseline}; create one with "
                  f"--write-baseline", file=sys.stderr)
            return 2
        violations = check_bench(doc, baseline)
        checked = len(baseline.get("metrics", {}))
        if violations:
            print(f"{len(violations)} of {checked} gated metrics regressed:")
            for violation in violations:
                print("  " + format_violation(violation))
            return 1
        print(f"ok: {checked} gated metrics within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
