"""Wall-clock benchmarks of the hot kernels (``python -m repro.bench``).

:mod:`repro.bench.kernels` defines the five named kernels;
:mod:`repro.bench.__main__` is the CLI that times them, writes
``BENCH_repro.json`` and gates against
``benchmarks/results/bench_baseline.json``.
"""

from repro.bench.kernels import KERNELS, SIZES

__all__ = ["KERNELS", "SIZES"]
