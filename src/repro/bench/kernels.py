"""The named hot-kernel benchmarks behind ``python -m repro.bench``.

Each kernel is a function ``bench_<name>(params, repeats, rng_seed)``
returning a JSON-able record: wall-clock times (best-of-``repeats``),
deterministic work counters, and — where a reference implementation
exists — the reference time and speedup. Wall-clock numbers vary by
machine; the work counters are seeded and bit-stable, which is what the
baseline gate pins (see :mod:`repro.bench.__main__`).

The eight kernels cover the per-batch hot path end to end:

* ``match_degree_matrix`` — the Reorder strategy's pairwise overlap
  product (vs the legacy O(n^2) ``np.intersect1d`` loop);
* ``greedy_reorder`` — Algorithm 1 chaining from raw node sets;
* ``reorder_blocked`` — the blocked top-k reorder pipeline (pair-counted
  matrix + candidate-block chain) vs the kept legacy path
  (``match_degree_matrix_legacy`` + full argmax sweep), orders asserted
  identical;
* ``ipc_bytes`` — the executor's transport: bytes over the worker pipes
  with the shared-memory arena on vs off, results asserted identical;
* ``fused_map_insert`` — the batch-vectorized Algorithm 2 hash-table
  insert (vs the exact per-operation oracle);
* ``neighbor_sampling`` — k-hop uniform sampling with the fused ID map;
* ``feature_gather`` — the memory-IO phase's host-side feature copy;
* ``halo_gather`` — the cluster tier's owner-grouping of a sampled
  frontier plus the per-peer feature-row gather (:mod:`repro.cluster`).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.reorder import (
    greedy_reorder,
    greedy_reorder_legacy,
    match_degree_matrix,
    match_degree_matrix_legacy,
)
from repro.graph.datasets import Dataset, DatasetSpec, PaperScale
from repro.graph.features import MaterializedFeatureStore
from repro.sampling import FusedIdMap, NeighborSampler
from repro.sampling.idmap.hash_table import (
    ExactOpenAddressTable,
    VectorOpenAddressTable,
    table_capacity,
)

#: Per-kernel parameters at the two benchmark scales. ``large`` for
#: ``match_degree_matrix`` is the acceptance size: 256 batches of 4k
#: nodes (the ISSUE's >=10x speedup target is measured there).
SIZES = {
    "match_degree_matrix": {
        "small": {"batches": 48, "nodes": 1024, "id_space": 50_000},
        "large": {"batches": 256, "nodes": 4096, "id_space": 200_000},
    },
    "greedy_reorder": {
        "small": {"batches": 48, "nodes": 1024, "id_space": 50_000},
        "large": {"batches": 256, "nodes": 4096, "id_space": 200_000},
    },
    # The acceptance size for the blocked top-k reorder is the *medium*
    # tier (256 batches x 4k nodes), so the O(batches^2) regression
    # surface is exercised by the CI --medium run, not only --full.
    "reorder_blocked": {
        "small": {"batches": 48, "nodes": 1024, "id_space": 50_000},
        "medium": {"batches": 256, "nodes": 4096, "id_space": 200_000},
    },
    "ipc_bytes": {
        "small": {"jobs": 2, "chunks": 4, "rows": 512, "dim": 64},
        "medium": {"jobs": 4, "chunks": 8, "rows": 2048, "dim": 128},
    },
    "fused_map_insert": {
        "small": {"num_ids": 20_000, "id_space": 60_000},
        "large": {"num_ids": 1_000_000, "id_space": 3_000_000},
    },
    "neighbor_sampling": {
        "small": {"num_nodes": 20_000, "batch_size": 512, "batches": 4,
                  "fanouts": (10, 10)},
        "large": {"num_nodes": 100_000, "batch_size": 1024, "batches": 8,
                  "fanouts": (15, 10)},
    },
    "feature_gather": {
        "small": {"num_nodes": 50_000, "dim": 128, "rows": 20_000,
                  "gathers": 8},
        "large": {"num_nodes": 500_000, "dim": 256, "rows": 100_000,
                  "gathers": 8},
    },
    "halo_gather": {
        "small": {"num_nodes": 50_000, "dim": 64, "parts": 4,
                  "rows": 20_000, "batches": 8},
        "large": {"num_nodes": 400_000, "dim": 128, "parts": 16,
                  "rows": 100_000, "batches": 8},
    },
}

#: Sizes at which the slow reference implementations are also timed
#: (the exact hash table is a Python loop; keep its workload bounded).
REFERENCE_SIZES = {
    "match_degree_matrix": ("small", "large"),
    "fused_map_insert": ("small",),
    "reorder_blocked": ("small", "medium"),
}


def _time(fn, repeats: int) -> list:
    """Wall-clock seconds per repeat (list, first may include warmup)."""
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def _record(name, size, params, times, work, reference=None):
    record = {
        "kernel": name,
        "size": size,
        "params": {k: (list(v) if isinstance(v, tuple) else v)
                   for k, v in params.items()},
        "repeats": len(times),
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "times_s": times,
        "work": work,
    }
    if reference is not None:
        record.update(reference)
    return record


def _node_sets(params, seed):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, params["id_space"], size=params["nodes"],
                     dtype=np.int64)
        for _ in range(params["batches"])
    ]


def bench_match_degree_matrix(size: str, repeats: int, seed: int,
                              with_reference: bool = True) -> dict:
    params = SIZES["match_degree_matrix"][size]
    node_sets = _node_sets(params, seed)
    times = _time(lambda: match_degree_matrix(node_sets), repeats)
    matrix = match_degree_matrix(node_sets)
    work = {
        "batches": params["batches"],
        "total_ids": params["batches"] * params["nodes"],
        "matrix_sum": round(float(matrix.sum()), 6),
    }
    reference = None
    if with_reference and size in REFERENCE_SIZES["match_degree_matrix"]:
        legacy_times = _time(
            lambda: match_degree_matrix_legacy(node_sets),
            min(repeats, 2),
        )
        reference = {
            "legacy_s": min(legacy_times),
            "speedup_vs_legacy": min(legacy_times) / min(times),
        }
    return _record("match_degree_matrix", size, params, times, work,
                   reference)


def bench_greedy_reorder(size: str, repeats: int, seed: int) -> dict:
    params = SIZES["greedy_reorder"][size]
    node_sets = _node_sets(params, seed)
    times = _time(
        lambda: greedy_reorder(node_sets, assume_unique=False), repeats
    )
    order = greedy_reorder(node_sets)
    work = {
        "batches": params["batches"],
        "order_checksum": int(np.dot(np.arange(len(order)), order)),
    }
    return _record("greedy_reorder", size, params, times, work)


def bench_reorder_blocked(size: str, repeats: int, seed: int,
                          with_reference: bool = True) -> dict:
    """The full blocked top-k reorder pipeline from raw node sets
    (pair-counted match matrix + candidate-block chain) against the kept
    legacy path (``match_degree_matrix_legacy`` + full argmax sweep).
    Orders must be identical — including ties — or the record refuses to
    report a speedup at all."""
    params = SIZES["reorder_blocked"][size]
    node_sets = _node_sets(params, seed)
    times = _time(
        lambda: greedy_reorder(node_sets, assume_unique=False), repeats
    )
    order = greedy_reorder(node_sets)
    work = {
        "batches": params["batches"],
        "order_checksum": int(np.dot(np.arange(len(order)), order)),
    }
    reference = None
    if with_reference and size in REFERENCE_SIZES["reorder_blocked"]:
        legacy_times = _time(
            lambda: greedy_reorder_legacy(node_sets), min(repeats, 2)
        )
        legacy_order = greedy_reorder_legacy(node_sets)
        if legacy_order != order:  # pragma: no cover - pinned by tests
            raise AssertionError(
                "blocked reorder diverged from the legacy sweep")
        work["orders_match"] = 1
        reference = {
            "legacy_s": min(legacy_times),
            "speedup_vs_legacy": min(legacy_times) / min(times),
        }
    return _record("reorder_blocked", size, params, times, work, reference)


def bench_ipc_bytes(size: str, repeats: int, seed: int) -> dict:
    """Executor transport bytes: the same ndarray-heavy result payloads
    shipped through pickled pipes vs the shared-memory arena.

    The byte counts are arithmetic over deterministic payloads, not
    timings, so ``ipc_reduction`` (pipe bytes without the arena / pipe
    bytes with it) is machine-independent; the baseline keeps a >= 10x
    floor under it. Identical results across transports are asserted
    here and conformance-pinned in the test suite. Timings record the
    arena run (best); the pipe run's wall clock is reported as
    ``pipes_s`` but never gated (transport wall-clock is noise-bound at
    these payload sizes — the bytes are the deliverable)."""
    from repro.parallel import ParallelExecutor, fork_available

    params = SIZES["ipc_bytes"][size]
    rows, dim = params["rows"], params["dim"]

    def task(index):
        rng = np.random.default_rng(seed * 1000 + index)
        return {
            "features": rng.standard_normal((rows, dim)).astype(np.float32),
            "ids": rng.integers(0, 1 << 40, rows),
            "loss": float(rng.random()),
        }

    def checksum(results):
        total = 0.0
        for record in results:
            total += float(record["features"].sum())
            total += float(record["ids"].sum() % (1 << 31))
            total += record["loss"]
        return round(total, 3)

    def run(use_arena):
        executor = ParallelExecutor(jobs=params["jobs"],
                                    use_arena=use_arena)
        last: list = []

        def once():
            last[:] = [executor.map(task, range(params["chunks"]))]

        durations = _time(once, repeats)
        return durations, last[0], executor.last_transport

    serial = ParallelExecutor(jobs=1).map(task, range(params["chunks"]))
    work = {
        "chunks": params["chunks"],
        "payload_checksum": checksum(serial),
    }
    reference = None
    if fork_available():
        pipe_times, pipe_results, pipe_stats = run(use_arena=False)
        arena_times, arena_results, arena_stats = run(use_arena=True)
        for got in (pipe_results, arena_results):
            if checksum(got) != work["payload_checksum"]:
                raise AssertionError("transport changed task results")
        work["pipe_ipc_bytes"] = pipe_stats.ipc_bytes
        work["arena_ipc_bytes"] = arena_stats.ipc_bytes
        work["arena_shm_bytes"] = arena_stats.shm_bytes
        work["ipc_reduction"] = round(
            pipe_stats.ipc_bytes / max(arena_stats.ipc_bytes, 1), 2)
        times = arena_times
        reference = {"pipes_s": min(pipe_times)}
    else:  # pragma: no cover - non-fork platforms time the serial path
        times = _time(lambda: ParallelExecutor(jobs=1).map(
            task, range(params["chunks"])), repeats)
    return _record("ipc_bytes", size, params, times, work, reference)


def bench_fused_map_insert(size: str, repeats: int, seed: int,
                           with_reference: bool = True) -> dict:
    params = SIZES["fused_map_insert"][size]
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, params["id_space"], size=params["num_ids"],
                       dtype=np.int64)
    capacity = table_capacity(len(np.unique(ids)))

    def run():
        table = VectorOpenAddressTable(capacity)
        table.fused_map_insert_batch(ids)
        return table

    times = _time(run, repeats)
    table = run()
    work = {
        "capacity": capacity,
        "inserts": table.stats.inserts,
        "duplicate_hits": table.stats.duplicate_hits,
        "local_id": table.local_id,
    }
    reference = None
    if with_reference and size in REFERENCE_SIZES["fused_map_insert"]:
        def run_exact():
            exact = ExactOpenAddressTable(capacity)
            for gid in ids:
                exact.fused_map_insert(int(gid))

        exact_times = _time(run_exact, 1)
        reference = {
            "exact_s": min(exact_times),
            "speedup_vs_exact": min(exact_times) / min(times),
        }
    return _record("fused_map_insert", size, params, times, work, reference)


def _bench_dataset(num_nodes: int, seed: int) -> Dataset:
    spec = DatasetSpec(
        name=f"bench-{num_nodes}",
        num_nodes=num_nodes,
        avg_degree=15.0,
        feature_dim=64,
        num_classes=8,
        train_fraction=0.3,
        paper=PaperScale(num_nodes * 10, num_nodes * 150, 1_000_000),
    )
    return Dataset(spec, seed=seed)


def bench_neighbor_sampling(size: str, repeats: int, seed: int) -> dict:
    params = SIZES["neighbor_sampling"][size]
    dataset = _bench_dataset(params["num_nodes"], seed)
    batch_rng = np.random.default_rng(seed + 1)
    batches = [
        batch_rng.choice(dataset.train_ids, size=params["batch_size"],
                         replace=False)
        for _ in range(params["batches"])
    ]

    def run():
        sampler = NeighborSampler(
            dataset.graph, params["fanouts"], idmap=FusedIdMap(),
            rng=np.random.default_rng(seed + 2),
        )
        return [sampler.sample(batch) for batch in batches]

    times = _time(run, repeats)
    subgraphs = run()
    work = {
        "batches": len(batches),
        "sampled_edges": int(sum(sg.num_sampled_edges for sg in subgraphs)),
        "input_nodes": int(sum(sg.num_nodes for sg in subgraphs)),
    }
    return _record("neighbor_sampling", size, params, times, work)


def bench_feature_gather(size: str, repeats: int, seed: int) -> dict:
    params = SIZES["feature_gather"][size]
    rng = np.random.default_rng(seed)
    store = MaterializedFeatureStore(
        rng.standard_normal(
            (params["num_nodes"], params["dim"])
        ).astype(np.float32)
    )
    requests = [
        rng.choice(params["num_nodes"], size=params["rows"], replace=False)
        for _ in range(params["gathers"])
    ]

    def run():
        total = 0
        for request in requests:
            total += len(store.gather(request))
        return total

    times = _time(run, repeats)
    work = {
        "gathers": params["gathers"],
        "rows": params["gathers"] * params["rows"],
        "bytes": params["gathers"] * params["rows"] * store.bytes_per_node,
    }
    return _record("feature_gather", size, params, times, work)


def bench_halo_gather(size: str, repeats: int, seed: int) -> dict:
    """Owner-grouping plus per-peer feature gather of a halo exchange:
    the per-batch hot path of :class:`repro.cluster.halo.HaloExchange`."""
    from repro.cluster.halo import group_by_owner

    params = SIZES["halo_gather"][size]
    rng = np.random.default_rng(seed)
    owners = rng.integers(0, params["parts"], size=params["num_nodes"],
                          dtype=np.int64)
    features = rng.standard_normal(
        (params["num_nodes"], params["dim"])
    ).astype(np.float32)
    requests = [
        rng.choice(params["num_nodes"], size=params["rows"], replace=False)
        for _ in range(params["batches"])
    ]

    def run():
        moved = 0
        for request in requests:
            grouped, counts = group_by_owner(request, owners,
                                             params["parts"])
            offset = 0
            for count in counts:
                peer_rows = features[grouped[offset:offset + count]]
                moved += peer_rows.nbytes
                offset += count
        return moved

    times = _time(run, repeats)
    grouped, counts = group_by_owner(requests[0], owners, params["parts"])
    work = {
        "batches": params["batches"],
        "rows": params["batches"] * params["rows"],
        "bytes": run(),
        "counts_checksum": int(np.dot(np.arange(len(counts)), counts)),
    }
    return _record("halo_gather", size, params, times, work)


#: Kernel name -> callable(size, repeats, seed) in report order.
KERNELS = {
    "match_degree_matrix": bench_match_degree_matrix,
    "greedy_reorder": bench_greedy_reorder,
    "reorder_blocked": bench_reorder_blocked,
    "ipc_bytes": bench_ipc_bytes,
    "fused_map_insert": bench_fused_map_insert,
    "neighbor_sampling": bench_neighbor_sampling,
    "feature_gather": bench_feature_gather,
    "halo_gather": bench_halo_gather,
}
