"""Inference requests, arrival processes, and admission control.

One :class:`InferenceRequest` is a k-hop neighborhood query: *give me
predictions for these seed nodes*. The serving hot path it triggers —
sample the k-hop subgraph, fetch the feature rows, aggregate — is the
same three-phase loop the paper profiles for training (Fig. 1), which is
why the paper's GPU-efficiency techniques transfer to serving unchanged.

Arrival processes generate deterministic request schedules (Poisson,
bursty, or a replayed trace); :class:`RequestQueue` applies admission
control in front of the micro-batcher: a queue cap (load shedding) and
deadline-based dropping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import RngFactory, ensure_rng


@dataclass
class InferenceRequest:
    """One online inference query."""

    req_id: int
    #: Virtual-time arrival (seconds since the simulation epoch).
    arrival: float
    #: Seed node IDs whose predictions the client wants.
    seeds: np.ndarray
    #: Latest acceptable completion time (arrival + SLO), or +inf.
    deadline: float = float("inf")
    #: Filled in by the server simulation.
    completion: float | None = None
    outcome: str = "pending"  # pending | completed | shed | dropped

    @property
    def latency(self) -> float:
        """Sojourn time (completion - arrival); NaN until completed."""
        if self.completion is None:
            return float("nan")
        return self.completion - self.arrival

    @property
    def met_deadline(self) -> bool:
        return self.completion is not None and self.completion <= self.deadline


def poisson_arrivals(rate: float, num_requests: int, rng=None) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = ensure_rng(rng)
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    return np.cumsum(gaps)


def bursty_arrivals(
    rate: float,
    num_requests: int,
    rng=None,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.2,
) -> np.ndarray:
    """A two-state modulated Poisson process (calm / burst).

    Each request is drawn from the burst state with probability
    ``burst_fraction``; burst gaps are ``burst_factor`` times shorter.
    Rates are normalized so the *mean* rate stays ``rate``, making bursty
    and Poisson schedules comparable at equal load.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not 0.0 <= burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in [0, 1)")
    rng = ensure_rng(rng)
    # mean gap = (1-f)/calm_rate + f/(calm_rate*factor) == 1/rate
    calm_rate = rate * ((1.0 - burst_fraction)
                        + burst_fraction / burst_factor)
    in_burst = rng.random(num_requests) < burst_fraction
    gaps = rng.exponential(1.0 / calm_rate, size=num_requests)
    gaps[in_burst] /= burst_factor
    return np.cumsum(gaps)


def replay_arrivals(times) -> np.ndarray:
    """A recorded trace of arrival times (must be non-decreasing)."""
    times = np.asarray(times, dtype=np.float64)
    if len(times) and np.any(np.diff(times) < 0):
        raise ValueError("replayed arrival times must be non-decreasing")
    return times


#: Name -> generator for the CLI / config surface.
ARRIVAL_PROCESSES = {
    "poisson": poisson_arrivals,
    "bursty": bursty_arrivals,
}


def build_schedule(
    process: str,
    rate: float,
    num_requests: int,
    seed_pool: np.ndarray,
    seeds_per_request: int,
    slo_s: float,
    seed: int = 0,
    replay_times=None,
) -> list:
    """Materialize the full deterministic request schedule.

    ``seed_pool`` is the node-ID population queries draw from (typically
    the dataset's held-out split). ``replay_times`` short-circuits the
    generator when ``process == "replay"``.
    """
    rngs = RngFactory(seed)
    if process == "replay":
        if replay_times is None:
            raise ValueError('process "replay" needs replay_times')
        times = replay_arrivals(replay_times)
    else:
        try:
            generator = ARRIVAL_PROCESSES[process]
        except KeyError:
            raise ValueError(
                f"unknown arrival process {process!r}; available: "
                f"{sorted(ARRIVAL_PROCESSES) + ['replay']}"
            ) from None
        times = generator(rate, num_requests, rng=rngs.child("arrivals"))
    seed_rng = rngs.child("request-seeds")
    requests = []
    for i, t in enumerate(times):
        size = min(seeds_per_request, len(seed_pool))
        seeds = seed_rng.choice(seed_pool, size=size, replace=False)
        requests.append(InferenceRequest(
            req_id=i,
            arrival=float(t),
            seeds=np.sort(seeds.astype(np.int64)),
            deadline=float(t) + slo_s if slo_s > 0 else float("inf"),
        ))
    return requests


@dataclass
class AdmissionStats:
    """Counters the admission controller maintains.

    ``shed`` (queue full on arrival) and ``dropped`` (deadline already
    passed at service start) are disjoint exits and reported under
    distinct metrics; ``degraded_shed`` is the subset of ``shed`` caused
    by the degraded-mode capacity reduction rather than the queue
    actually being full.
    """

    admitted: int = 0
    shed: int = 0
    dropped: int = 0
    degraded_shed: int = 0


class RequestQueue:
    """Admission control in front of the micro-batcher.

    ``capacity`` bounds the number of requests admitted but not yet in
    service; arrivals beyond it are shed immediately (the load-shedding
    half of admission control). Requests whose deadline has already
    passed when the batcher would take them are dropped (deadline drop) —
    serving a guaranteed-late answer only adds queueing delay for
    everyone behind it.

    **Graceful degradation.** With ``degrade_after_drops > 0``, the
    queue watches for deadline-drop bursts (a fault-injected GPU stall,
    a slow storage tier): once that many drops land inside
    ``degrade_window_s``, the admission capacity shrinks by
    ``degrade_capacity_factor`` so new arrivals are shed at the door
    instead of queueing behind work that will blow its deadline anyway.
    Capacity recovers as soon as the window drains.
    """

    def __init__(self, capacity: int, degrade_after_drops: int = 0,
                 degrade_window_s: float = 0.05,
                 degrade_capacity_factor: float = 0.5) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < degrade_capacity_factor <= 1.0:
            raise ValueError("degrade_capacity_factor must be in (0, 1]")
        self.capacity = int(capacity)
        self.degrade_after_drops = int(degrade_after_drops)
        self.degrade_window_s = float(degrade_window_s)
        self.degrade_capacity_factor = float(degrade_capacity_factor)
        self.stats = AdmissionStats()
        self._in_queue = 0
        self._recent_drops: list = []

    @property
    def depth(self) -> int:
        """Requests currently admitted but not yet in service."""
        return self._in_queue

    def degraded(self, now: float) -> bool:
        """Whether the recent deadline-drop rate tripped degraded mode."""
        if self.degrade_after_drops <= 0:
            return False
        cutoff = now - self.degrade_window_s
        self._recent_drops = [t for t in self._recent_drops if t >= cutoff]
        return len(self._recent_drops) >= self.degrade_after_drops

    def effective_capacity(self, now: float) -> int:
        """Current admission cap (shrunk while degraded)."""
        if self.degraded(now):
            return max(1, int(self.capacity * self.degrade_capacity_factor))
        return self.capacity

    def offer(self, request: InferenceRequest, now: float) -> bool:
        """Admit or shed ``request`` at time ``now``."""
        cap = self.effective_capacity(now)
        if self._in_queue >= cap:
            request.outcome = "shed"
            request.completion = now
            self.stats.shed += 1
            if self._in_queue < self.capacity:
                self.stats.degraded_shed += 1
            return False
        request.outcome = "queued"
        self.stats.admitted += 1
        self._in_queue += 1
        return True

    def take(self, request: InferenceRequest, now: float) -> bool:
        """Move ``request`` from the queue into service; False = deadline
        drop (the request leaves the system instead)."""
        self._in_queue -= 1
        if now > request.deadline:
            request.outcome = "dropped"
            request.completion = now
            self.stats.dropped += 1
            if self.degrade_after_drops > 0:
                self._recent_drops.append(now)
            return False
        request.outcome = "in_service"
        return True
