"""Inference requests, arrival processes, and admission control.

One :class:`InferenceRequest` is a k-hop neighborhood query: *give me
predictions for these seed nodes*. The serving hot path it triggers —
sample the k-hop subgraph, fetch the feature rows, aggregate — is the
same three-phase loop the paper profiles for training (Fig. 1), which is
why the paper's GPU-efficiency techniques transfer to serving unchanged.

Arrival processes generate deterministic request schedules (Poisson,
bursty, or a replayed trace); :class:`RequestQueue` applies admission
control in front of the micro-batcher: a queue cap (load shedding) and
deadline-based dropping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import RngFactory, ensure_rng


@dataclass
class InferenceRequest:
    """One online inference query."""

    req_id: int
    #: Virtual-time arrival (seconds since the simulation epoch).
    arrival: float
    #: Seed node IDs whose predictions the client wants.
    seeds: np.ndarray
    #: Latest acceptable completion time (arrival + SLO), or +inf.
    deadline: float = float("inf")
    #: Filled in by the server simulation.
    completion: float | None = None
    outcome: str = "pending"  # pending | completed | shed | dropped
    #: Simulated user the query came from (-1 = anonymous population).
    user_id: int = -1
    #: Times a fleet re-routed this request after a replica loss.
    reroutes: int = 0

    @property
    def latency(self) -> float:
        """Sojourn time (completion - arrival); NaN until completed."""
        if self.completion is None:
            return float("nan")
        return self.completion - self.arrival

    @property
    def met_deadline(self) -> bool:
        return self.completion is not None and self.completion <= self.deadline


def poisson_arrivals(rate: float, num_requests: int, rng=None) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = ensure_rng(rng)
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    return np.cumsum(gaps)


def bursty_arrivals(
    rate: float,
    num_requests: int,
    rng=None,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.2,
) -> np.ndarray:
    """A two-state modulated Poisson process (calm / burst).

    Each request is drawn from the burst state with probability
    ``burst_fraction``; burst gaps are ``burst_factor`` times shorter.
    Rates are normalized so the *mean* rate stays ``rate``, making bursty
    and Poisson schedules comparable at equal load.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not 0.0 <= burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in [0, 1)")
    rng = ensure_rng(rng)
    # mean gap = (1-f)/calm_rate + f/(calm_rate*factor) == 1/rate
    calm_rate = rate * ((1.0 - burst_fraction)
                        + burst_fraction / burst_factor)
    in_burst = rng.random(num_requests) < burst_fraction
    gaps = rng.exponential(1.0 / calm_rate, size=num_requests)
    gaps[in_burst] /= burst_factor
    return np.cumsum(gaps)


def replay_arrivals(times) -> np.ndarray:
    """A recorded trace of arrival times (must be non-decreasing)."""
    times = np.asarray(times, dtype=np.float64)
    if len(times) and np.any(np.diff(times) < 0):
        raise ValueError("replayed arrival times must be non-decreasing")
    return times


def diurnal_arrivals(
    rate: float,
    num_requests: int,
    rng=None,
    period_s: float = 1.0,
    amplitude: float = 0.6,
) -> np.ndarray:
    """An inhomogeneous Poisson process with a sinusoidal daily cycle.

    The instantaneous rate is ``rate * (1 + amplitude * sin(2*pi*t /
    period_s))`` — the compressed shape of a planet-scale service's
    day/night traffic swing (``period_s`` is one simulated "day"). Each
    gap is drawn at the rate in effect when it opens, so the mean rate
    stays ``rate`` over whole periods and peaks reach ``(1 + amplitude)``
    times the trough's load.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    rng = ensure_rng(rng)
    draws = rng.exponential(1.0, size=num_requests)
    times = np.empty(num_requests, dtype=np.float64)
    t = 0.0
    for i in range(num_requests):
        local = rate * (1.0 + amplitude * np.sin(2.0 * np.pi * t / period_s))
        t += draws[i] / local
        times[i] = t
    return times


def flash_crowd_arrivals(
    rate: float,
    num_requests: int,
    rng=None,
    flash_start_frac: float = 0.4,
    flash_requests_frac: float = 0.4,
    flash_factor: float = 10.0,
) -> np.ndarray:
    """A Poisson baseline with one flash crowd in the middle.

    ``flash_requests_frac`` of the requests arrive at ``flash_factor``
    times the baseline rate, starting once ``flash_start_frac`` of the
    baseline requests have landed — a breaking-news spike hitting a
    steady service. The autoscaler and chaos experiments key off this
    shape: the spike is where queues build and a replica loss hurts most.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not 0.0 <= flash_start_frac < 1.0:
        raise ValueError("flash_start_frac must be in [0, 1)")
    if not 0.0 < flash_requests_frac < 1.0:
        raise ValueError("flash_requests_frac must be in (0, 1)")
    if flash_factor < 1.0:
        raise ValueError("flash_factor must be >= 1")
    rng = ensure_rng(rng)
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    flash_len = max(1, int(num_requests * flash_requests_frac))
    flash_at = int((num_requests - flash_len) * flash_start_frac)
    gaps[flash_at:flash_at + flash_len] /= flash_factor
    return np.cumsum(gaps)


#: Name -> generator for the CLI / config surface.
ARRIVAL_PROCESSES = {
    "poisson": poisson_arrivals,
    "bursty": bursty_arrivals,
    "diurnal": diurnal_arrivals,
    "flash": flash_crowd_arrivals,
}


#: Power-law exponent of the user-popularity draw: ``user = floor(U *
#: uniform**USER_SKEW)`` concentrates traffic on low-numbered users the
#: way a real service's hot accounts dominate its request log.
USER_SKEW = 3.0

#: A user's personal seed pool is this many times ``seeds_per_request``
#: wide — repeat queries from one user overlap heavily but are not
#: byte-identical, which is what match-affinity routing exploits.
USER_WINDOW_FACTOR = 4


def build_schedule(
    process: str,
    rate: float,
    num_requests: int,
    seed_pool: np.ndarray,
    seeds_per_request: int,
    slo_s: float,
    seed: int = 0,
    replay_times=None,
    num_users: int = 0,
) -> list:
    """Materialize the full deterministic request schedule.

    ``seed_pool`` is the node-ID population queries draw from (typically
    the dataset's held-out split). ``replay_times`` short-circuits the
    generator when ``process == "replay"``.

    ``num_users > 0`` switches on the population model: each request is
    issued by one of ``num_users`` simulated users (drawn from a skewed
    popularity distribution, so a planet-scale population of millions
    still concentrates traffic on its hot users) and draws its seeds
    from that user's personal window of the pool instead of uniformly.
    Repeat traffic from one user therefore overlaps — the inter-request
    locality that Match-style caching and affinity routing convert into
    saved feature traffic. ``num_users == 0`` keeps the historical
    uniform draw, bit-identical to earlier schedules.
    """
    rngs = RngFactory(seed)
    if process == "replay":
        if replay_times is None:
            raise ValueError('process "replay" needs replay_times')
        times = replay_arrivals(replay_times)
    else:
        try:
            generator = ARRIVAL_PROCESSES[process]
        except KeyError:
            raise ValueError(
                f"unknown arrival process {process!r}; available: "
                f"{sorted(ARRIVAL_PROCESSES) + ['replay']}"
            ) from None
        times = generator(rate, num_requests, rng=rngs.child("arrivals"))
    seed_rng = rngs.child("request-seeds")
    size = min(seeds_per_request, len(seed_pool))
    window = min(len(seed_pool), max(size, USER_WINDOW_FACTOR * size))
    requests = []
    for i, t in enumerate(times):
        user = -1
        if num_users > 0:
            user = int(num_users * seed_rng.random() ** USER_SKEW)
            user = min(user, num_users - 1)
            # The user's window tiles the pool; distinct users with
            # distinct windows share nothing, hot users repeat theirs.
            start = (user * window) % max(1, len(seed_pool) - window + 1)
            pool = seed_pool[start:start + window]
        else:
            pool = seed_pool
        seeds = seed_rng.choice(pool, size=size, replace=False)
        requests.append(InferenceRequest(
            req_id=i,
            arrival=float(t),
            seeds=np.sort(seeds.astype(np.int64)),
            deadline=float(t) + slo_s if slo_s > 0 else float("inf"),
            user_id=user,
        ))
    return requests


@dataclass
class AdmissionStats:
    """Counters the admission controller maintains.

    ``shed`` (queue full on arrival) and ``dropped`` (deadline already
    passed at service start) are disjoint exits and reported under
    distinct metrics; ``degraded_shed`` is the subset of ``shed`` caused
    by the degraded-mode capacity reduction rather than the queue
    actually being full.
    """

    admitted: int = 0
    shed: int = 0
    dropped: int = 0
    degraded_shed: int = 0

    @property
    def refused(self) -> int:
        """Requests that never reached service (shed + dropped)."""
        return self.shed + self.dropped

    def merge(self, other: "AdmissionStats") -> "AdmissionStats":
        """Fold another queue's counters in (fleet-level aggregation)."""
        self.admitted += other.admitted
        self.shed += other.shed
        self.dropped += other.dropped
        self.degraded_shed += other.degraded_shed
        return self


class RequestQueue:
    """Admission control in front of the micro-batcher.

    ``capacity`` bounds the number of requests admitted but not yet in
    service; arrivals beyond it are shed immediately (the load-shedding
    half of admission control). Requests whose deadline has already
    passed when the batcher would take them are dropped (deadline drop) —
    serving a guaranteed-late answer only adds queueing delay for
    everyone behind it.

    **Graceful degradation.** With ``degrade_after_drops > 0``, the
    queue watches for deadline-drop bursts (a fault-injected GPU stall,
    a slow storage tier): once that many drops land inside
    ``degrade_window_s``, the admission capacity shrinks by
    ``degrade_capacity_factor`` so new arrivals are shed at the door
    instead of queueing behind work that will blow its deadline anyway.
    Capacity recovers as soon as the window drains.
    """

    def __init__(self, capacity: int, degrade_after_drops: int = 0,
                 degrade_window_s: float = 0.05,
                 degrade_capacity_factor: float = 0.5) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < degrade_capacity_factor <= 1.0:
            raise ValueError("degrade_capacity_factor must be in (0, 1]")
        self.capacity = int(capacity)
        self.degrade_after_drops = int(degrade_after_drops)
        self.degrade_window_s = float(degrade_window_s)
        self.degrade_capacity_factor = float(degrade_capacity_factor)
        self.stats = AdmissionStats()
        self._in_queue = 0
        self._recent_drops: list = []

    @property
    def depth(self) -> int:
        """Requests currently admitted but not yet in service."""
        return self._in_queue

    def degraded(self, now: float) -> bool:
        """Whether the recent deadline-drop rate tripped degraded mode."""
        if self.degrade_after_drops <= 0:
            return False
        cutoff = now - self.degrade_window_s
        self._recent_drops = [t for t in self._recent_drops if t >= cutoff]
        return len(self._recent_drops) >= self.degrade_after_drops

    def _capacity_when(self, degraded: bool) -> int:
        if degraded:
            return max(1, int(self.capacity * self.degrade_capacity_factor))
        return self.capacity

    def effective_capacity(self, now: float) -> int:
        """Current admission cap (shrunk while degraded)."""
        return self._capacity_when(self.degraded(now))

    def offer(self, request: InferenceRequest, now: float) -> bool:
        """Admit or refuse ``request`` at time ``now``.

        Refusals are classified by *cause*, and the causes are disjoint:
        while degraded, a request whose deadline has already passed is a
        **deadline drop at the door** (``dropped``) — never a shed.
        Before this rule, the same guaranteed-late request was charged to
        ``degraded_shed`` when it arrived at the reduced-capacity
        boundary but to ``dropped`` when it squeaked in below the cap
        and was taken a moment later, so the two counters double-counted
        the one deadline casualty class right at the boundary the
        degradation window watches.
        """
        degraded = self.degraded(now)
        if degraded and now > request.deadline:
            request.outcome = "dropped"
            request.completion = now
            self.stats.dropped += 1
            # A door-drop is the same casualty class as a take()-drop:
            # it keeps the degradation window armed.
            self._recent_drops.append(now)
            return False
        cap = self._capacity_when(degraded)
        if self._in_queue >= cap:
            request.outcome = "shed"
            request.completion = now
            self.stats.shed += 1
            if self._in_queue < self.capacity:
                self.stats.degraded_shed += 1
            return False
        request.outcome = "queued"
        self.stats.admitted += 1
        self._in_queue += 1
        return True

    def take(self, request: InferenceRequest, now: float) -> bool:
        """Move ``request`` from the queue into service; False = deadline
        drop (the request leaves the system instead)."""
        self._in_queue -= 1
        if now > request.deadline:
            request.outcome = "dropped"
            request.completion = now
            self.stats.dropped += 1
            if self.degrade_after_drops > 0:
                self._recent_drops.append(now)
            return False
        request.outcome = "in_service"
        return True
