"""Planet-scale serving-fleet simulation.

:class:`FleetSim` runs N :class:`~repro.serve.server.ReplicaEngine`
replicas on **one** shared event loop behind a pluggable
:class:`~repro.serve.routing.Router` — the same discrete-event clock
the single server always used, so a fleet of one replica is
bit-identical to :class:`~repro.serve.server.ServerSim` (pinned by the
fleet conformance suite). On top of the replica set sit the fleet-only
mechanisms:

* an :class:`~repro.serve.autoscale.Autoscaler` sampling queue
  occupancy (EWMA) and a running p99 estimate, adding or draining
  replicas mid-trace under cooldown + hysteresis;
* a fleet-shared :class:`~repro.serve.cache_tier.CacheTier` of
  embedding rows with TTL staleness, backed by a
  :class:`~repro.parallel.shm.SharedArena` when available;
* **replica loss** via the ``replica_crash`` fault site: a killed
  replica's queued/batching/in-flight requests are recovered and
  re-routed (never silently lost), the router re-anchors, and the
  availability accounting keeps an exact ledger
  (``completed + shed + dropped + outage == scheduled``);
* a :class:`FleetReport` reconciling every replica's modeled timeline
  against the fleet makespan, with fleet-level p50/p95/p99,
  throughput, availability and the cache-hit tier split.

Entry points: :func:`simulate_fleet` (mirrors
:func:`repro.serve.server.simulate`), ``api.serve(fleet=FleetSpec(...))``
and ``python -m repro.serve --fleet``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import RunConfig
from repro.faults import get_fault_plan
from repro.obs import get_registry
from repro.serve.autoscale import Autoscaler, AutoscalerConfig
from repro.serve.cache_tier import CacheTier, CacheTierConfig
from repro.serve.profiles import ServingProfile
from repro.serve.routing import ROUTER_POLICIES, build_router
from repro.serve.server import (
    ReplicaEngine,
    ServeConfig,
    ServeReport,
    schedule_requests,
)
from repro.serve.request import AdmissionStats
from repro.sim.events import EventLoop

#: Crash windows land inside the arrival horizon: fraction bounds of
#: the schedule's last arrival time.
CRASH_WINDOW = (0.1, 0.9)


@dataclass(frozen=True)
class FleetSpec:
    """Topology + policy of one serving fleet."""

    #: Replicas at t=0 (the autoscaler may add/drain more).
    num_replicas: int = 1
    #: Routing policy: "round-robin", "jsq" or "match-affinity".
    router: str = "round-robin"
    #: Match-affinity score floor; below it the router falls back to JSQ.
    match_threshold: float = 0.125
    autoscaler: AutoscalerConfig = AutoscalerConfig()
    cache: CacheTierConfig = CacheTierConfig()

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.router not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router {self.router!r}; registered: "
                f"{sorted(ROUTER_POLICIES)}")


@dataclass
class FleetReport:
    """Everything one fleet simulation produced."""

    framework: str
    dataset: str
    config: ServeConfig
    spec: FleetSpec
    #: The full request schedule (terminal outcomes set in place).
    requests: list
    #: Per-replica :class:`ServeReport`, index = replica id; replicas
    #: added by the autoscaler appear after the initial set.
    replicas: list
    #: Fleet clock at the last terminal event (exit or crash).
    makespan: float
    scale_events: list = field(default_factory=list)
    #: ``(time, replica_id, requests_recovered)`` per injected crash.
    crash_events: list = field(default_factory=list)
    #: Requests recovered from crashed replicas and offered again.
    rerouted: int = 0
    #: Requests shed because no replica was accepting traffic.
    outage_shed: int = 0
    #: Fleet-level spans (outage sheds) outside any replica timeline.
    orphan_timeline: list = field(default_factory=list)
    #: Shared cache tier counters (None when the tier was disabled).
    cache: object = None

    # -- request outcomes ----------------------------------------------------
    @property
    def num_completed(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "completed")

    @property
    def num_shed(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "shed")

    @property
    def num_dropped(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "dropped")

    @property
    def num_terminal(self) -> int:
        return self.num_completed + self.num_shed + self.num_dropped

    @property
    def availability(self) -> float:
        """Completed fraction of everything scheduled — the SLO ledger
        a crash dents exactly by what could not be re-routed."""
        if not self.requests:
            return 1.0
        return self.num_completed / len(self.requests)

    @property
    def admission(self) -> AdmissionStats:
        """Merged admission counters across every replica."""
        total = AdmissionStats()
        for report in self.replicas:
            if report.admission is not None:
                total.merge(report.admission)
        return total

    # -- latency / throughput ------------------------------------------------
    @property
    def latencies(self) -> np.ndarray:
        return np.array([r.latency for r in self.requests
                         if r.outcome == "completed"], dtype=float)

    def percentile(self, q: float) -> float:
        lat = self.latencies
        if len(lat) == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean_latency(self) -> float:
        lat = self.latencies
        return float(lat.mean()) if len(lat) else float("nan")

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.num_completed / self.makespan

    # -- cache tiers ---------------------------------------------------------
    @property
    def device_hit_rate(self) -> float:
        """Replica-device (Match residency) reuse: reused / wanted rows
        summed over every replica's transfer accounting."""
        wanted = reused = 0
        for report in self.replicas:
            if report.transfer is not None:
                wanted += report.transfer.num_wanted
                reused += report.transfer.num_reused
        return reused / wanted if wanted else 0.0

    @property
    def tier_hit_rate(self) -> float:
        """Shared-tier fresh-hit rate (0.0 when the tier was off)."""
        return self.cache.hit_rate if self.cache is not None else 0.0

    @property
    def tier_stale_rate(self) -> float:
        return self.cache.stale_rate if self.cache is not None else 0.0

    # -- timeline ------------------------------------------------------------
    def merged_timeline(self) -> list:
        """Every replica's spans plus fleet-level orphan spans."""
        spans = []
        for report in self.replicas:
            spans.extend(report.timeline)
        spans.extend(self.orphan_timeline)
        return spans

    @property
    def timeline_extent(self) -> float:
        spans = self.merged_timeline()
        if not spans:
            return 0.0
        return max(s["start"] + s["dur"] for s in spans)

    def reconciles(self, tol: float = 1e-6) -> bool:
        """Fleet timeline extent must match the fleet makespan, and each
        replica's own timeline must reconcile with its lifetime."""
        if abs(self.timeline_extent - self.makespan) > tol:
            return False
        return all(r.reconciles(tol) for r in self.replicas)

    def summary(self) -> str:
        tier = (f", tier hit {self.tier_hit_rate:.0%}"
                if self.cache is not None else "")
        return (
            f"fleet[{self.spec.router} x{len(self.replicas)}] "
            f"{self.framework} served {self.num_completed}/"
            f"{len(self.requests)} on {self.dataset}: "
            f"p50 {self.p50 * 1e3:.2f}ms, p99 {self.p99 * 1e3:.2f}ms, "
            f"{self.throughput:.0f} req/s, "
            f"availability {self.availability:.1%}, "
            f"device hit {self.device_hit_rate:.0%}{tier}, "
            f"rerouted {self.rerouted}, outage {self.outage_shed}"
        )


class FleetSim:
    """N serving replicas, one event loop, one router.

    ``profile_factory`` builds one fresh :class:`ServingProfile` per
    replica (each replica owns its device residency state, exactly like
    N independent GPUs). The factory runs once per initial replica and
    once per autoscaler add.
    """

    def __init__(self, profile_factory, serve_config: ServeConfig,
                 spec: FleetSpec) -> None:
        self.profile_factory = profile_factory
        self.serve_config = serve_config or ServeConfig()
        self.spec = spec or FleetSpec()

    def run(self) -> FleetReport:
        cfg = self.serve_config
        spec = self.spec
        loop = EventLoop()
        plan = get_fault_plan()
        router = build_router(spec.router, spec.match_threshold)
        autoscaler = (Autoscaler(spec.autoscaler)
                      if spec.autoscaler.enabled else None)
        cache = CacheTier(spec.cache) if spec.cache.enabled else None

        engines: list = []
        orphan_timeline: list = []
        crash_events: list = []
        state = {"terminal": 0, "rerouted": 0, "outage": 0,
                 "last_exit": 0.0}

        registry = get_registry()
        obs_routed = registry.counter(
            "repro_fleet_routed_total",
            "Requests routed to a replica, by policy",
        ).labels(policy=spec.router)
        obs_rerouted = registry.counter(
            "repro_fleet_rerouted_total",
            "Requests recovered from crashed replicas and re-routed",
        )
        obs_outage = registry.counter(
            "repro_fleet_outage_shed_total",
            "Requests shed because no replica was accepting",
        )

        def on_exit(request, now):
            state["terminal"] += 1
            state["last_exit"] = max(state["last_exit"], now)
            if autoscaler is not None and request.outcome == "completed":
                autoscaler.observe_latency(request.latency)

        def new_engine() -> ReplicaEngine:
            engine = ReplicaEngine(
                loop, self.profile_factory(), cfg,
                replica_id=len(engines), cache_tier=cache,
                fault_plan=plan)
            engine.on_exit = on_exit
            engines.append(engine)
            return engine

        for _ in range(spec.num_replicas):
            new_engine()
        requests = schedule_requests(engines[0].profile, cfg)
        horizon = requests[-1].arrival if requests else 0.0

        def route(request, now) -> None:
            accepting = [e for e in engines if e.accepting]
            if not accepting:
                # Total outage: nothing can take the request; it is
                # shed at fleet level and charged to availability.
                request.outcome = "shed"
                orphan_timeline.append({
                    "lane": "requests",
                    "name": f"outage[{request.req_id}]",
                    "cat": "queue", "start": request.arrival,
                    "dur": max(0.0, now - request.arrival),
                    "request": request.req_id,
                })
                state["outage"] += 1
                obs_outage.inc()
                on_exit(request, now)
                return
            replica = router.choose(accepting, request)
            obs_routed.inc()
            replica.offer(request, now)

        def arrivals():
            for request in requests:
                yield max(0.0, request.arrival - loop.now)
                route(request, loop.now)

        def crash(engine) -> None:
            if not engine.alive:
                return
            now = loop.now
            plan.record("replica_crash", engine.replica_id, 0, "crash")
            router.replica_lost(engine)
            stranded = engine.crash(now)
            crash_events.append((now, engine.replica_id, len(stranded)))
            for request in stranded:
                state["rerouted"] += 1
                obs_rerouted.inc()
                route(request, now)

        if plan.enabled and plan.spec("replica_crash") is not None:
            lo, hi = CRASH_WINDOW
            for engine in list(engines):
                if plan.should_crash("replica_crash",
                                     key=engine.replica_id, attempt=0):
                    frac = plan.jitter_rng(
                        "replica_crash", engine.replica_id).random()
                    at = (lo + (hi - lo) * frac) * horizon
                    loop.call_later(at, lambda e=engine: crash(e))

        def monitor():
            interval = spec.autoscaler.interval_s
            deadline = horizon * 10.0 + 10.0  # runaway backstop
            while state["terminal"] < len(requests):
                yield interval
                if (state["terminal"] >= len(requests)
                        or loop.now > deadline):
                    return
                live = [e for e in engines if e.accepting]
                # Total outage reads as full pressure: the controller
                # is the only path back to serving (replica restart).
                occupancy = 1.0 if not live else float(np.mean(
                    [e.load / cfg.queue_capacity for e in live]))
                autoscaler.observe_occupancy(occupancy)
                action = autoscaler.decide(loop.now, len(live))
                if action == "add":
                    new_engine().spawn()
                elif action == "drain":
                    victim = live[-1]  # youngest accepting replica
                    victim.draining = True
                    victim.stopped_at = loop.now
                    router.replica_lost(victim)

        # Spawn order mirrors ServerSim (arrivals, then each replica's
        # batching + gpu) so a one-replica fleet replays bit-identically.
        loop.spawn(arrivals())
        for engine in engines:
            engine.spawn()
        if autoscaler is not None and requests:
            loop.spawn(monitor())
        loop.run()

        # The loop's end time can trail the last terminal event (stale
        # monitor wake-ups, abandoned in-flight service); the fleet
        # clock stops at the last exit or crash instead.
        makespan = max([state["last_exit"]]
                       + [e.crashed_at for e in engines
                          if e.crashed_at is not None])

        replica_reports = []
        for engine in engines:
            touched = sorted(engine.touched, key=lambda r: r.req_id)
            span = engine.last_exit
            if engine.crashed_at is not None:
                span = max(span, engine.crashed_at)
            replica_reports.append(engine.report(touched, span))

        if cache is not None:
            cache_stats = cache.stats
            cache.close()
        else:
            cache_stats = None

        report = FleetReport(
            framework=engines[0].profile.name,
            dataset=engines[0].profile.dataset.name,
            config=cfg,
            spec=spec,
            requests=requests,
            replicas=replica_reports,
            makespan=makespan,
            scale_events=(list(autoscaler.events)
                          if autoscaler is not None else []),
            crash_events=crash_events,
            rerouted=state["rerouted"],
            outage_shed=state["outage"],
            orphan_timeline=orphan_timeline,
            cache=cache_stats,
        )
        registry.gauge(
            "repro_fleet_availability",
            "Completed fraction of scheduled requests",
        ).labels(policy=spec.router).set(report.availability)
        return report


def fleet_demo_dataset(name: str = "fleet-smoke", seed: int = 0):
    """The fleet gate's self-contained dataset: wide feature rows so
    memory IO dominates modeled service time and routing locality is
    visible in p99 (shared by the CLI smoke gate and the ext_fleet
    experiments)."""
    from repro.graph.datasets import Dataset, DatasetSpec, PaperScale

    spec = DatasetSpec(
        name=name,
        num_nodes=4000,
        avg_degree=16.0,
        feature_dim=4096,
        num_classes=8,
        train_fraction=0.3,
        paper=PaperScale(400_000, 6_400_000, 1 << 30),
    )
    return Dataset(spec, seed=seed)


def simulate_fleet(
    framework,
    dataset,
    *,
    run_config: RunConfig | None = None,
    serve_config: ServeConfig | None = None,
    fleet: FleetSpec | None = None,
    model: str = "gcn",
    spec=None,
) -> FleetReport:
    """Build per-replica profiles for ``framework`` and run one fleet."""
    run_config = run_config or RunConfig(num_gpus=1)

    def factory() -> ServingProfile:
        return ServingProfile.build(framework, dataset, run_config,
                                    model=model, spec=spec)

    return FleetSim(factory, serve_config or ServeConfig(),
                    fleet or FleetSpec()).run()
