"""Online inference serving for sampled GNNs (modeled time).

The paper optimizes the three phases of sampling-based *training*;
online *serving* runs the same three phases per request — sample the
k-hop neighborhood, fetch its feature rows, aggregate — so the same
GPU-efficiency techniques (Fused-Map, Match residency, Memory-Aware
aggregation) decide serving latency too. This package simulates that
request path end to end:

    arrivals -> admission control -> micro-batching -> GPU hot path

Quickstart::

    from repro import get_dataset
    from repro.serve import ServeConfig, simulate

    report = simulate("fastgl", get_dataset("reddit"),
                      serve_config=ServeConfig(rate=800, num_requests=300))
    print(report.summary())          # p50/p95/p99, throughput, shed rate

or from the command line::

    python -m repro.serve --framework fastgl --framework dgl --rate 800
"""

from repro.serve.autoscale import Autoscaler, AutoscalerConfig, ScaleEvent
from repro.serve.batcher import (
    MicroBatch,
    MicroBatcher,
    plan_dispatch_order,
    select_next_batch,
)
from repro.serve.cache_tier import CacheTier, CacheTierConfig, CacheTierStats
from repro.serve.fleet import FleetReport, FleetSim, FleetSpec, simulate_fleet
from repro.serve.profiles import ServiceTimes, ServingProfile
from repro.serve.request import (
    ARRIVAL_PROCESSES,
    InferenceRequest,
    RequestQueue,
    build_schedule,
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
    replay_arrivals,
)
from repro.serve.routing import (
    ROUTER_POLICIES,
    JoinShortestQueueRouter,
    MatchAffinityRouter,
    RoundRobinRouter,
    Router,
    build_router,
)
from repro.serve.server import (
    LATENCY_BUCKETS,
    ReplicaEngine,
    ServeConfig,
    ServeReport,
    ServerSim,
    simulate,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "Autoscaler",
    "AutoscalerConfig",
    "CacheTier",
    "CacheTierConfig",
    "CacheTierStats",
    "FleetReport",
    "FleetSim",
    "FleetSpec",
    "InferenceRequest",
    "JoinShortestQueueRouter",
    "LATENCY_BUCKETS",
    "MatchAffinityRouter",
    "MicroBatch",
    "MicroBatcher",
    "ROUTER_POLICIES",
    "ReplicaEngine",
    "RequestQueue",
    "RoundRobinRouter",
    "Router",
    "ScaleEvent",
    "ServeConfig",
    "ServeReport",
    "ServerSim",
    "ServiceTimes",
    "ServingProfile",
    "build_router",
    "build_schedule",
    "bursty_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "plan_dispatch_order",
    "poisson_arrivals",
    "replay_arrivals",
    "select_next_batch",
    "simulate",
    "simulate_fleet",
]
