"""The online-serving event simulation.

:class:`ServerSim` wires three processes over one
:class:`~repro.sim.events.EventLoop`:

* **arrivals** — replays the deterministic request schedule through
  admission control (queue cap -> shed);
* **batcher** — drives a :class:`~repro.serve.batcher.MicroBatcher`
  (size/window triggers) and hands closed batches to the dispatch queue;
* **gpu** — drains the dispatch backlog (FastGL profiles reorder it by
  match degree), deadline-drops stale requests, and services each batch
  through the profile's modeled sample -> memory IO -> aggregate path.

Every request's journey and every GPU phase becomes a modeled span, so
the exported Chrome trace reconciles with the event-loop makespan
exactly; the :class:`ServeReport` carries per-request latencies
(p50/p95/p99), throughput, shed/drop counts and GPU occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import RunConfig
from repro.faults import get_fault_plan
from repro.obs import get_registry
from repro.obs.trace import Tracer
from repro.serve.batcher import MicroBatcher, select_next_batch
from repro.serve.profiles import ServingProfile
from repro.serve.request import RequestQueue, build_schedule
from repro.sim.events import TIMEOUT, EventLoop

#: Latency-scaled histogram buckets (seconds) for serving metrics.
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving run (arrival process + server policy)."""

    #: Mean arrival rate, requests/second.
    rate: float = 500.0
    num_requests: int = 200
    #: "poisson", "bursty" or "replay" (with ``replay_times``).
    arrival: str = "poisson"
    #: Seed nodes per request (a recommendation query's candidate set).
    seeds_per_request: int = 4
    #: Micro-batch size trigger.
    max_batch: int = 16
    #: Micro-batch window trigger (seconds from batch open).
    batch_window_s: float = 0.004
    #: Admission-queue capacity; arrivals beyond it are shed.
    queue_capacity: int = 64
    #: Latency SLO; requests whose deadline passed before service start
    #: are dropped. <= 0 disables deadlines.
    slo_s: float = 0.25
    seed: int = 0
    replay_times: tuple | None = None
    #: Graceful degradation: this many deadline drops inside
    #: ``degrade_window_s`` shrink the admission capacity by
    #: ``degrade_capacity_factor`` (shed at the door instead of stalling
    #: everyone). 0 disables degradation.
    degrade_after_drops: int = 0
    degrade_window_s: float = 0.05
    degrade_capacity_factor: float = 0.5


@dataclass
class ServeReport:
    """Everything one serving simulation produced."""

    framework: str
    dataset: str
    config: ServeConfig
    requests: list
    batches: list
    #: Event-loop end time: when the last request left the system.
    makespan: float
    #: Per-phase busy seconds on the GPU lane.
    phase_busy: dict = field(default_factory=dict)
    #: Merged byte accounting across all serviced batches.
    transfer: object = None
    #: Modeled spans (same dict layout as training timelines).
    timeline: list = field(default_factory=list)
    #: The admission controller's counters (shed vs deadline-dropped vs
    #: degraded-mode shed stay distinguishable).
    admission: object = None

    # -- request outcomes ----------------------------------------------------
    @property
    def completed(self) -> list:
        return [r for r in self.requests if r.outcome == "completed"]

    @property
    def num_completed(self) -> int:
        return len(self.completed)

    @property
    def num_shed(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "shed")

    @property
    def num_dropped(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "dropped")

    @property
    def num_degraded_shed(self) -> int:
        """Sheds attributable to degraded-mode capacity reduction."""
        if self.admission is None:
            return 0
        return self.admission.degraded_shed

    @property
    def shed_rate(self) -> float:
        if not self.requests:
            return 0.0
        return self.num_shed / len(self.requests)

    @property
    def sla_misses(self) -> int:
        """Completed requests that finished after their deadline."""
        return sum(1 for r in self.completed if not r.met_deadline)

    # -- latency/throughput --------------------------------------------------
    @property
    def latencies(self) -> np.ndarray:
        return np.array([r.latency for r in self.completed], dtype=float)

    def percentile(self, q: float) -> float:
        lat = self.latencies
        if len(lat) == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean_latency(self) -> float:
        lat = self.latencies
        return float(lat.mean()) if len(lat) else float("nan")

    @property
    def throughput(self) -> float:
        """Completed requests per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.num_completed / self.makespan

    @property
    def mean_batch_size(self) -> float:
        sizes = [b.size for b in self.batches]
        return float(np.mean(sizes)) if sizes else 0.0

    @property
    def occupancy(self) -> float:
        """Fraction of the makespan the GPU spent servicing batches."""
        if self.makespan <= 0:
            return 0.0
        return sum(self.phase_busy.values()) / self.makespan

    # -- timeline ------------------------------------------------------------
    @property
    def timeline_extent(self) -> float:
        """Latest span end — must reconcile with :attr:`makespan`."""
        if not self.timeline:
            return 0.0
        return max(s["start"] + s["dur"] for s in self.timeline)

    def reconciles(self, tol: float = 1e-6) -> bool:
        return abs(self.timeline_extent - self.makespan) <= tol

    def to_tracer(self) -> Tracer:
        tracer = Tracer(enabled=True)
        for span in self.timeline:
            tracer.add_span(
                span["name"], start=span["start"], duration=span["dur"],
                lane=span["lane"], category=span["cat"],
                **{k: v for k, v in span.items()
                   if k not in ("name", "start", "dur", "lane", "cat")},
            )
        return tracer

    def write_chrome_trace(self, path) -> int:
        return self.to_tracer().write_chrome_trace(
            path, pid=f"serve:{self.framework}",
            other_data={"framework": self.framework,
                        "dataset": self.dataset,
                        "makespan_s": self.makespan},
        )

    def summary(self) -> str:
        return (
            f"{self.framework} served {self.num_completed}/"
            f"{len(self.requests)} requests on {self.dataset}: "
            f"p50 {self.p50 * 1e3:.2f}ms, p95 {self.p95 * 1e3:.2f}ms, "
            f"p99 {self.p99 * 1e3:.2f}ms, "
            f"{self.throughput:.0f} req/s, "
            f"shed {self.num_shed}, dropped {self.num_dropped}, "
            f"occupancy {self.occupancy:.0%}"
        )


class ServerSim:
    """One framework's serving simulation over one request schedule."""

    def __init__(self, profile: ServingProfile,
                 serve_config: ServeConfig | None = None) -> None:
        self.profile = profile
        self.serve_config = serve_config or ServeConfig()

    def _schedule(self) -> list:
        dataset = self.profile.dataset
        cfg = self.serve_config
        pool = dataset.test_ids if len(dataset.test_ids) else dataset.train_ids
        return build_schedule(
            cfg.arrival, cfg.rate, cfg.num_requests,
            seed_pool=pool, seeds_per_request=cfg.seeds_per_request,
            slo_s=cfg.slo_s, seed=cfg.seed, replay_times=cfg.replay_times,
        )

    def run(self) -> ServeReport:
        profile = self.profile
        cfg = self.serve_config
        requests = self._schedule()
        loop = EventLoop()
        admitted = loop.queue("admitted")
        dispatch = loop.queue("dispatch")
        admission = RequestQueue(
            cfg.queue_capacity,
            degrade_after_drops=cfg.degrade_after_drops,
            degrade_window_s=cfg.degrade_window_s,
            degrade_capacity_factor=cfg.degrade_capacity_factor,
        )
        batcher = MicroBatcher(cfg.max_batch, cfg.batch_window_s)
        fault_plan = get_fault_plan()

        timeline: list = []
        batches: list = []
        backlog: list = []
        phase_busy = {"sample": 0.0, "memory_io": 0.0, "compute": 0.0}
        transfer_total = None

        registry = get_registry()
        obs_outcome = registry.counter(
            "repro_serve_requests_total",
            "Inference requests by final outcome",
        )
        obs_latency = registry.histogram(
            "repro_serve_latency_seconds",
            "End-to-end request latency (arrival to completion)",
            buckets=LATENCY_BUCKETS,
        ).labels(framework=profile.name)
        obs_batch = registry.histogram(
            "repro_serve_batch_size",
            "Requests coalesced per micro-batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        ).labels(framework=profile.name)
        obs_busy = registry.counter(
            "repro_serve_busy_seconds_total",
            "Modeled GPU seconds per serving phase",
        )
        # Distinct exit counters: shed (admission refused on arrival,
        # including degraded-mode sheds) vs deadline-dropped (admitted
        # but stale at service start) must never fold together.
        obs_shed = registry.counter(
            "repro_serve_shed_requests_total",
            "Requests refused by admission control (queue full or "
            "degraded mode)",
        ).labels(framework=profile.name)
        obs_deadline_dropped = registry.counter(
            "repro_serve_deadline_dropped_total",
            "Admitted requests dropped because their deadline passed "
            "before service start",
        ).labels(framework=profile.name)

        def queue_span(request, end, outcome):
            timeline.append({
                "lane": "requests", "name": f"{outcome}[{request.req_id}]",
                "cat": "queue", "start": request.arrival,
                "dur": max(0.0, end - request.arrival),
                "request": request.req_id,
            })

        def arrivals():
            for request in requests:
                yield max(0.0, request.arrival - loop.now)
                if admission.offer(request, loop.now):
                    admitted.put(request)
                else:
                    queue_span(request, loop.now, "shed")
                    obs_outcome.labels(framework=profile.name,
                                       outcome="shed").inc()
                    obs_shed.inc()

        def batching():
            while True:
                first = yield admitted.get()
                full = batcher.open(first, loop.now)
                while not full:
                    remaining = batcher.close_deadline - loop.now
                    if remaining <= 0:
                        break
                    item = yield admitted.get(timeout=remaining)
                    if item is TIMEOUT:
                        break
                    full = batcher.add(item, loop.now)
                dispatch.put(batcher.close(
                    loop.now, trigger="size" if full else "window"))

        def gpu():
            nonlocal transfer_total
            while True:
                if not backlog:
                    backlog.append((yield dispatch.get()))
                while True:  # drain batches that closed while busy
                    extra = dispatch.get_nowait()
                    if extra is TIMEOUT:
                        break
                    backlog.append(extra)
                index = 0
                if profile.reorder_backlog and len(backlog) > 1:
                    index = select_next_batch(backlog,
                                              profile.resident_nodes)
                batch = backlog.pop(index)
                live = []
                for request in batch.requests:
                    if admission.take(request, loop.now):
                        live.append(request)
                    else:
                        queue_span(request, loop.now, "dropped")
                        obs_outcome.labels(framework=profile.name,
                                           outcome="dropped").inc()
                        obs_deadline_dropped.inc()
                if not live:
                    continue
                seeds = np.unique(np.concatenate(
                    [r.seeds for r in live]))
                times, _, transfer = profile.service(seeds)
                if transfer_total is None:
                    transfer_total = type(transfer)()
                transfer_total.merge(transfer)
                start = loop.now
                cursor = start
                stall = 0.0
                if fault_plan.enabled:
                    # An injected serving stall (a wedged GPU, a blown
                    # request deadline upstream) delays this batch's
                    # whole service; the admission queue's degradation
                    # logic is what keeps the backlog from melting down.
                    stall = fault_plan.stall("serve_stall",
                                             key=batch.batch_id)
                    if stall > 0:
                        timeline.append({
                            "lane": "gpu0",
                            "name": f"fault_stall[{batch.batch_id}]",
                            "cat": "fault_stall", "start": cursor,
                            "dur": stall, "batch": batch.batch_id,
                        })
                        cursor += stall
                        phase_busy["fault_stall"] = (
                            phase_busy.get("fault_stall", 0.0) + stall)
                        obs_busy.labels(framework=profile.name,
                                        phase="fault_stall").inc(stall)
                for phase, duration in (("sample", times.sample),
                                        ("memory_io", times.memory_io),
                                        ("compute", times.compute)):
                    if duration > 0:
                        timeline.append({
                            "lane": "gpu0",
                            "name": f"{phase}[{batch.batch_id}]",
                            "cat": phase, "start": cursor,
                            "dur": duration, "batch": batch.batch_id,
                        })
                        cursor += duration
                    phase_busy[phase] += duration
                    obs_busy.labels(framework=profile.name,
                                    phase=phase).inc(duration)
                yield times.total + stall
                batch.service_start = start
                batch.service_end = loop.now
                batch.requests = live
                batches.append(batch)
                obs_batch.observe(len(live))
                for request in live:
                    request.completion = loop.now
                    request.outcome = "completed"
                    queue_span(request, start, "wait")
                    obs_outcome.labels(framework=profile.name,
                                       outcome="completed").inc()
                    obs_latency.observe(request.latency)

        loop.spawn(arrivals())
        loop.spawn(batching())
        loop.spawn(gpu())
        makespan = loop.run()

        return ServeReport(
            framework=profile.name,
            dataset=profile.dataset.name,
            config=cfg,
            requests=requests,
            batches=batches,
            makespan=makespan,
            phase_busy=phase_busy,
            transfer=transfer_total,
            timeline=timeline,
            admission=admission.stats,
        )


def simulate(
    framework,
    dataset,
    *,
    run_config: RunConfig | None = None,
    serve_config: ServeConfig | None = None,
    model: str = "gcn",
    spec=None,
) -> ServeReport:
    """Build a profile for ``framework`` and run one serving simulation."""
    run_config = run_config or RunConfig(num_gpus=1)
    profile = ServingProfile.build(framework, dataset, run_config,
                                   model=model, spec=spec)
    return ServerSim(profile, serve_config).run()
