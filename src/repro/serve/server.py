"""The online-serving event simulation.

:class:`ServerSim` wires three processes over one
:class:`~repro.sim.events.EventLoop`:

* **arrivals** — replays the deterministic request schedule through
  admission control (queue cap -> shed);
* **batcher** — drives a :class:`~repro.serve.batcher.MicroBatcher`
  (size/window triggers) and hands closed batches to the dispatch queue;
* **gpu** — drains the dispatch backlog (FastGL profiles reorder it by
  match degree), deadline-drops stale requests, and services each batch
  through the profile's modeled sample -> memory IO -> aggregate path.

Every request's journey and every GPU phase becomes a modeled span, so
the exported Chrome trace reconciles with the event-loop makespan
exactly; the :class:`ServeReport` carries per-request latencies
(p50/p95/p99), throughput, shed/drop counts and GPU occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import RunConfig
from repro.faults import get_fault_plan
from repro.obs import get_registry
from repro.obs.trace import Tracer
from repro.serve.batcher import MicroBatcher, select_next_batch
from repro.serve.profiles import ServiceTimes, ServingProfile
from repro.serve.request import RequestQueue, build_schedule
from repro.sim.events import TIMEOUT, EventLoop

#: Latency-scaled histogram buckets (seconds) for serving metrics.
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving run (arrival process + server policy)."""

    #: Mean arrival rate, requests/second.
    rate: float = 500.0
    num_requests: int = 200
    #: "poisson", "bursty" or "replay" (with ``replay_times``).
    arrival: str = "poisson"
    #: Seed nodes per request (a recommendation query's candidate set).
    seeds_per_request: int = 4
    #: Micro-batch size trigger.
    max_batch: int = 16
    #: Micro-batch window trigger (seconds from batch open).
    batch_window_s: float = 0.004
    #: Admission-queue capacity; arrivals beyond it are shed.
    queue_capacity: int = 64
    #: Latency SLO; requests whose deadline passed before service start
    #: are dropped. <= 0 disables deadlines.
    slo_s: float = 0.25
    seed: int = 0
    replay_times: tuple | None = None
    #: Graceful degradation: this many deadline drops inside
    #: ``degrade_window_s`` shrink the admission capacity by
    #: ``degrade_capacity_factor`` (shed at the door instead of stalling
    #: everyone). 0 disables degradation.
    degrade_after_drops: int = 0
    degrade_window_s: float = 0.05
    degrade_capacity_factor: float = 0.5
    #: Simulated user-population size for locality-skewed seed draws
    #: (0 keeps the legacy uniform draw — bit-identical schedules).
    num_users: int = 0


@dataclass
class ServeReport:
    """Everything one serving simulation produced."""

    framework: str
    dataset: str
    config: ServeConfig
    requests: list
    batches: list
    #: Event-loop end time: when the last request left the system.
    makespan: float
    #: Per-phase busy seconds on the GPU lane.
    phase_busy: dict = field(default_factory=dict)
    #: Merged byte accounting across all serviced batches.
    transfer: object = None
    #: Modeled spans (same dict layout as training timelines).
    timeline: list = field(default_factory=list)
    #: The admission controller's counters (shed vs deadline-dropped vs
    #: degraded-mode shed stay distinguishable).
    admission: object = None

    # -- request outcomes ----------------------------------------------------
    @property
    def completed(self) -> list:
        return [r for r in self.requests if r.outcome == "completed"]

    @property
    def num_completed(self) -> int:
        return len(self.completed)

    @property
    def num_shed(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "shed")

    @property
    def num_dropped(self) -> int:
        return sum(1 for r in self.requests if r.outcome == "dropped")

    @property
    def num_degraded_shed(self) -> int:
        """Sheds attributable to degraded-mode capacity reduction."""
        if self.admission is None:
            return 0
        return self.admission.degraded_shed

    @property
    def shed_rate(self) -> float:
        if not self.requests:
            return 0.0
        return self.num_shed / len(self.requests)

    @property
    def sla_misses(self) -> int:
        """Completed requests that finished after their deadline."""
        return sum(1 for r in self.completed if not r.met_deadline)

    # -- latency/throughput --------------------------------------------------
    @property
    def latencies(self) -> np.ndarray:
        return np.array([r.latency for r in self.completed], dtype=float)

    def percentile(self, q: float) -> float:
        lat = self.latencies
        if len(lat) == 0:
            return float("nan")
        return float(np.percentile(lat, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean_latency(self) -> float:
        lat = self.latencies
        return float(lat.mean()) if len(lat) else float("nan")

    @property
    def throughput(self) -> float:
        """Completed requests per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.num_completed / self.makespan

    @property
    def mean_batch_size(self) -> float:
        sizes = [b.size for b in self.batches]
        return float(np.mean(sizes)) if sizes else 0.0

    @property
    def occupancy(self) -> float:
        """Fraction of the makespan the GPU spent servicing batches."""
        if self.makespan <= 0:
            return 0.0
        return sum(self.phase_busy.values()) / self.makespan

    # -- timeline ------------------------------------------------------------
    @property
    def timeline_extent(self) -> float:
        """Latest span end — must reconcile with :attr:`makespan`."""
        if not self.timeline:
            return 0.0
        return max(s["start"] + s["dur"] for s in self.timeline)

    def reconciles(self, tol: float = 1e-6) -> bool:
        return abs(self.timeline_extent - self.makespan) <= tol

    def to_tracer(self) -> Tracer:
        tracer = Tracer(enabled=True)
        for span in self.timeline:
            tracer.add_span(
                span["name"], start=span["start"], duration=span["dur"],
                lane=span["lane"], category=span["cat"],
                **{k: v for k, v in span.items()
                   if k not in ("name", "start", "dur", "lane", "cat")},
            )
        return tracer

    def write_chrome_trace(self, path) -> int:
        return self.to_tracer().write_chrome_trace(
            path, pid=f"serve:{self.framework}",
            other_data={"framework": self.framework,
                        "dataset": self.dataset,
                        "makespan_s": self.makespan},
        )

    def summary(self) -> str:
        return (
            f"{self.framework} served {self.num_completed}/"
            f"{len(self.requests)} requests on {self.dataset}: "
            f"p50 {self.p50 * 1e3:.2f}ms, p95 {self.p95 * 1e3:.2f}ms, "
            f"p99 {self.p99 * 1e3:.2f}ms, "
            f"{self.throughput:.0f} req/s, "
            f"shed {self.num_shed}, dropped {self.num_dropped}, "
            f"occupancy {self.occupancy:.0%}"
        )


def schedule_requests(profile: ServingProfile, cfg: ServeConfig) -> list:
    """The deterministic request schedule one serving run replays."""
    dataset = profile.dataset
    pool = dataset.test_ids if len(dataset.test_ids) else dataset.train_ids
    return build_schedule(
        cfg.arrival, cfg.rate, cfg.num_requests,
        seed_pool=pool, seeds_per_request=cfg.seeds_per_request,
        slo_s=cfg.slo_s, seed=cfg.seed, replay_times=cfg.replay_times,
        num_users=cfg.num_users,
    )


class ReplicaEngine:
    """The batching + GPU service processes of one serving replica.

    Extracted from the original single-server simulation so a fleet
    (:class:`repro.serve.fleet.FleetSim`) can run N of these on one
    shared event loop. One engine owns exactly the replica-local state
    the single server always had — admission queue, micro-batcher,
    dispatch backlog, phase accounting, timeline — plus the hooks a
    fleet needs: :meth:`offer` (a router's entry point), :meth:`crash`
    (drain every queued/in-flight request for re-routing) and
    :meth:`spawn`. A fleet of one replica is therefore bit-identical to
    the pre-fleet :class:`ServerSim` — same queues, same process order,
    same spans — which the fleet conformance suite pins.
    """

    def __init__(self, loop: EventLoop, profile: ServingProfile,
                 cfg: ServeConfig, replica_id: int = 0,
                 cache_tier=None, fault_plan=None) -> None:
        self.loop = loop
        self.profile = profile
        self.cfg = cfg
        self.replica_id = int(replica_id)
        #: GPU-lane name; replica 0 keeps the historical ``gpu0``.
        self.lane = f"gpu{self.replica_id}"
        self.cache_tier = cache_tier
        self.fault_plan = (fault_plan if fault_plan is not None
                           else get_fault_plan())
        self.admitted = loop.queue(f"admitted{self.replica_id}")
        self.dispatch = loop.queue(f"dispatch{self.replica_id}")
        self.admission = RequestQueue(
            cfg.queue_capacity,
            degrade_after_drops=cfg.degrade_after_drops,
            degrade_window_s=cfg.degrade_window_s,
            degrade_capacity_factor=cfg.degrade_capacity_factor,
        )
        self.batcher = MicroBatcher(cfg.max_batch, cfg.batch_window_s)
        self.timeline: list = []
        self.batches: list = []
        self.backlog: list = []
        self.phase_busy = {"sample": 0.0, "memory_io": 0.0, "compute": 0.0}
        self.transfer_total = None
        #: Requests currently on the GPU (re-routed if we crash mid-pass).
        self.inflight: list = []
        #: Every request that reached a terminal outcome at this replica.
        self.touched: list = []
        self.alive = True
        #: Draining replicas finish their backlog but accept no routing.
        self.draining = False
        self.started_at = loop.now
        self.stopped_at: float | None = None
        self.crashed_at: float | None = None
        self.last_exit = 0.0
        #: Optional fleet callback ``(request, now)`` on terminal exit.
        self.on_exit = None
        self.tier_hits = 0
        self.tier_stale = 0
        self.tier_lookups = 0

        registry = get_registry()
        self._obs_outcome = registry.counter(
            "repro_serve_requests_total",
            "Inference requests by final outcome",
        )
        self._obs_latency = registry.histogram(
            "repro_serve_latency_seconds",
            "End-to-end request latency (arrival to completion)",
            buckets=LATENCY_BUCKETS,
        ).labels(framework=profile.name)
        self._obs_batch = registry.histogram(
            "repro_serve_batch_size",
            "Requests coalesced per micro-batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        ).labels(framework=profile.name)
        self._obs_busy = registry.counter(
            "repro_serve_busy_seconds_total",
            "Modeled GPU seconds per serving phase",
        )
        # Distinct exit counters: shed (admission refused on arrival,
        # including degraded-mode sheds) vs deadline-dropped (admitted
        # but stale at service start) must never fold together.
        self._obs_shed = registry.counter(
            "repro_serve_shed_requests_total",
            "Requests refused by admission control (queue full or "
            "degraded mode)",
        ).labels(framework=profile.name)
        self._obs_deadline_dropped = registry.counter(
            "repro_serve_deadline_dropped_total",
            "Admitted requests dropped because their deadline passed "
            "before service start",
        ).labels(framework=profile.name)

    # -- fleet-facing state --------------------------------------------------
    @property
    def load(self) -> int:
        """Requests admitted but not yet in service (the JSQ signal)."""
        return self.admission.depth

    @property
    def resident_nodes(self) -> np.ndarray:
        """Feature rows resident on this replica's device (Match state)."""
        return self.profile.resident_nodes

    @property
    def accepting(self) -> bool:
        """Whether a router may send new requests here."""
        return self.alive and not self.draining

    @property
    def idle(self) -> bool:
        """No admitted, batching, backlogged or in-flight work."""
        return (self.load == 0 and not self.inflight
                and not self.batcher.has_open_batch and not self.backlog
                and len(self.dispatch) == 0)

    def spawn(self) -> None:
        """Register the replica's batching + GPU processes on the loop."""
        self.loop.spawn(self._batching())
        self.loop.spawn(self._gpu())

    # -- request entry and exit ----------------------------------------------
    def offer(self, request, now: float) -> bool:
        """Route one request into this replica's admission queue."""
        if self.admission.offer(request, now):
            self.admitted.put(request)
            return True
        outcome = request.outcome  # "shed", or a degraded-mode door-drop
        self._queue_span(request, now, outcome)
        self._obs_outcome.labels(framework=self.profile.name,
                                 outcome=outcome).inc()
        if outcome == "dropped":
            self._obs_deadline_dropped.inc()
        else:
            self._obs_shed.inc()
        self._exit(request, now)
        return False

    def _exit(self, request, now: float) -> None:
        self.last_exit = max(self.last_exit, now)
        self.touched.append(request)
        if self.on_exit is not None:
            self.on_exit(request, now)

    def _queue_span(self, request, end: float, outcome: str) -> None:
        self.timeline.append({
            "lane": "requests", "name": f"{outcome}[{request.req_id}]",
            "cat": "queue", "start": request.arrival,
            "dur": max(0.0, end - request.arrival),
            "request": request.req_id,
        })

    # -- crash / drain -------------------------------------------------------
    def crash(self, now: float) -> list:
        """Kill the replica; return every request it was holding.

        Queued, batching, backlogged and in-flight requests are all
        recovered (their outcome reset to ``pending``) so the fleet can
        re-route instead of losing them. The replica's processes observe
        ``alive == False`` at their next resume and stop.
        """
        self.alive = False
        self.draining = True
        self.crashed_at = now
        self.stopped_at = now
        stranded: list = []
        stranded.extend(self.admitted.drain())
        stranded.extend(self.batcher.drain_open())
        for batch in self.backlog:
            stranded.extend(batch.requests)
        self.backlog = []
        while True:
            extra = self.dispatch.get_nowait()
            if extra is TIMEOUT:
                break
            stranded.extend(extra.requests)
        stranded.extend(self.inflight)
        self.inflight = []
        for request in stranded:
            request.outcome = "pending"
            request.reroutes += 1
        # Spans of the abandoned in-flight batch were written at dispatch
        # time and extend past the crash; cut them at the moment of death
        # (and refund the unserved GPU seconds) so the replica's timeline
        # still reconciles with its lifetime.
        kept = []
        for span in self.timeline:
            end = span["start"] + span["dur"]
            if end > now + 1e-12:
                new_dur = max(0.0, now - span["start"])
                if span["cat"] in self.phase_busy:
                    self.phase_busy[span["cat"]] -= span["dur"] - new_dur
                if new_dur <= 0.0:
                    continue
                span = dict(span, dur=new_dur)
            kept.append(span)
        self.timeline = kept
        self.timeline.append({
            "lane": self.lane, "name": "replica_crash",
            "cat": "fault_crash", "start": now, "dur": 0.0,
        })
        return stranded

    # -- report --------------------------------------------------------------
    def report(self, requests, makespan: float) -> ServeReport:
        """This replica's serving report over ``requests``."""
        return ServeReport(
            framework=self.profile.name,
            dataset=self.profile.dataset.name,
            config=self.cfg,
            requests=requests,
            batches=self.batches,
            makespan=makespan,
            phase_busy=self.phase_busy,
            transfer=self.transfer_total,
            timeline=self.timeline,
            admission=self.admission.stats,
        )

    # -- the serving processes -----------------------------------------------
    def _batching(self):
        loop = self.loop
        while True:
            first = yield self.admitted.get()
            if not self.alive:
                return
            full = self.batcher.open(first, loop.now)
            while not full:
                remaining = self.batcher.close_deadline - loop.now
                if remaining <= 0:
                    break
                item = yield self.admitted.get(timeout=remaining)
                if not self.alive:
                    return
                if item is TIMEOUT:
                    break
                full = self.batcher.add(item, loop.now)
            self.dispatch.put(self.batcher.close(
                loop.now, trigger="size" if full else "window"))

    def _through_cache_tier(self, times, subgraph):
        """Skip the host fetch for rows the shared tier holds fresh."""
        if self.cache_tier is None:
            return times
        nodes = subgraph.unique_input_nodes()
        hits, stale, missed = self.cache_tier.lookup(nodes, self.loop.now)
        self.tier_lookups += len(nodes)
        self.tier_hits += len(hits)
        self.tier_stale += len(stale)
        self.cache_tier.insert(np.concatenate([stale, missed]),
                               self.loop.now)
        if len(nodes) == 0 or len(hits) == 0:
            return times
        saved = (times.memory_io * (len(hits) / len(nodes))
                 * self.cache_tier.config.io_savings)
        return ServiceTimes(sample=times.sample,
                            memory_io=times.memory_io - saved,
                            compute=times.compute)

    def _gpu(self):
        loop = self.loop
        profile = self.profile
        while True:
            if not self.backlog:
                batch = yield self.dispatch.get()
                if not self.alive:
                    return
                self.backlog.append(batch)
            while True:  # drain batches that closed while busy
                extra = self.dispatch.get_nowait()
                if extra is TIMEOUT:
                    break
                self.backlog.append(extra)
            index = 0
            if profile.reorder_backlog and len(self.backlog) > 1:
                index = select_next_batch(self.backlog,
                                          profile.resident_nodes)
            batch = self.backlog.pop(index)
            live = []
            for request in batch.requests:
                if self.admission.take(request, loop.now):
                    live.append(request)
                else:
                    self._queue_span(request, loop.now, "dropped")
                    self._obs_outcome.labels(framework=profile.name,
                                             outcome="dropped").inc()
                    self._obs_deadline_dropped.inc()
                    self._exit(request, loop.now)
            if not live:
                continue
            seeds = np.unique(np.concatenate(
                [r.seeds for r in live]))
            times, subgraph, transfer = profile.service(seeds)
            if self.transfer_total is None:
                self.transfer_total = type(transfer)()
            self.transfer_total.merge(transfer)
            times = self._through_cache_tier(times, subgraph)
            self.inflight = live
            start = loop.now
            cursor = start
            stall = 0.0
            if self.fault_plan.enabled:
                # An injected serving stall (a wedged GPU, a blown
                # request deadline upstream) delays this batch's
                # whole service; the admission queue's degradation
                # logic is what keeps the backlog from melting down.
                # Replica 0 keeps the historical per-batch key so
                # single-server runs are unchanged; other replicas
                # decorrelate with a large odd stride.
                stall = self.fault_plan.stall(
                    "serve_stall",
                    key=batch.batch_id + self.replica_id * 1_000_003)
                if stall > 0:
                    self.timeline.append({
                        "lane": self.lane,
                        "name": f"fault_stall[{batch.batch_id}]",
                        "cat": "fault_stall", "start": cursor,
                        "dur": stall, "batch": batch.batch_id,
                    })
                    cursor += stall
                    self.phase_busy["fault_stall"] = (
                        self.phase_busy.get("fault_stall", 0.0) + stall)
                    self._obs_busy.labels(framework=profile.name,
                                          phase="fault_stall").inc(stall)
            for phase, duration in (("sample", times.sample),
                                    ("memory_io", times.memory_io),
                                    ("compute", times.compute)):
                if duration > 0:
                    self.timeline.append({
                        "lane": self.lane,
                        "name": f"{phase}[{batch.batch_id}]",
                        "cat": phase, "start": cursor,
                        "dur": duration, "batch": batch.batch_id,
                    })
                    cursor += duration
                self.phase_busy[phase] += duration
                self._obs_busy.labels(framework=profile.name,
                                      phase=phase).inc(duration)
            yield times.total + stall
            if not self.alive:
                # Crashed mid-pass: the crash handler already re-routed
                # self.inflight; this service never completed.
                return
            batch.service_start = start
            batch.service_end = loop.now
            batch.requests = live
            self.batches.append(batch)
            self.inflight = []
            self._obs_batch.observe(len(live))
            for request in live:
                request.completion = loop.now
                request.outcome = "completed"
                self._queue_span(request, start, "wait")
                self._obs_outcome.labels(framework=profile.name,
                                         outcome="completed").inc()
                self._obs_latency.observe(request.latency)
                self._exit(request, loop.now)


class ServerSim:
    """One framework's serving simulation over one request schedule."""

    def __init__(self, profile: ServingProfile,
                 serve_config: ServeConfig | None = None) -> None:
        self.profile = profile
        self.serve_config = serve_config or ServeConfig()

    def _schedule(self) -> list:
        return schedule_requests(self.profile, self.serve_config)

    def run(self) -> ServeReport:
        cfg = self.serve_config
        requests = self._schedule()
        loop = EventLoop()
        engine = ReplicaEngine(loop, self.profile, cfg)

        def arrivals():
            for request in requests:
                yield max(0.0, request.arrival - loop.now)
                engine.offer(request, loop.now)

        loop.spawn(arrivals())
        engine.spawn()
        makespan = loop.run()
        return engine.report(requests, makespan)


def simulate(
    framework,
    dataset,
    *,
    run_config: RunConfig | None = None,
    serve_config: ServeConfig | None = None,
    model: str = "gcn",
    spec=None,
) -> ServeReport:
    """Build a profile for ``framework`` and run one serving simulation."""
    run_config = run_config or RunConfig(num_gpus=1)
    profile = ServingProfile.build(framework, dataset, run_config,
                                   model=model, spec=spec)
    return ServerSim(profile, serve_config).run()
