"""Request routing policies for the serving fleet.

A :class:`Router` picks which replica an arriving request enters. Three
policies ship:

* **round-robin** — arrival order modulo live replicas; the control
  every fleet experiment is measured against.
* **jsq** (join-shortest-queue) — classic load balancing on admission
  depth; optimal for latency when service times are i.i.d., blind to
  *what* each replica has cached.
* **match-affinity** — the FastGL Match insight lifted from batching to
  routing: send the request to the replica whose **resident feature
  rows** (the Match-aware cache state the profile already tracks)
  overlap its seeds the most, measured by
  :func:`repro.core.match.match_degree`. Below ``threshold`` the signal
  is noise — fall back to JSQ so cold replicas still share load.

Every policy breaks ties on the lowest replica index (the same pinned
tie rule as Greedy Reorder), so routing decisions are deterministic and
replayable.
"""

from __future__ import annotations

import numpy as np

from repro.core.match import match_degree
from repro.serve.request import InferenceRequest


class Router:
    """Base routing policy over a live replica set.

    ``choose`` receives the replicas currently accepting traffic (never
    empty — the fleet handles the total-outage case itself) and the
    arriving request; it returns one of them. Policies are stateful
    (round-robin keeps a cursor) but must depend only on the replica
    set, the request and their own state — never on wall clock or
    global RNG — so a fleet replay is deterministic.
    """

    name = "base"

    def choose(self, replicas: list, request: InferenceRequest):
        raise NotImplementedError

    def replica_lost(self, replica) -> None:
        """Notification that ``replica`` left the live set (crash or
        drain); stateful policies re-anchor their cursors here."""


class RoundRobinRouter(Router):
    """Arrival order modulo live replicas (lowest index first)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, replicas: list, request: InferenceRequest):
        chosen = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return chosen

    def replica_lost(self, replica) -> None:
        # Keep the cadence: the cursor is modulo whatever set survives.
        self._cursor = 0


def join_shortest_queue(replicas: list):
    """The JSQ pick: least admission depth, lowest index on ties."""
    best = replicas[0]
    for replica in replicas[1:]:
        if replica.load < best.load:
            best = replica
    return best


class JoinShortestQueueRouter(Router):
    """Route to the replica with the fewest admitted-but-unserved
    requests; ties go to the lowest replica index."""

    name = "jsq"

    def choose(self, replicas: list, request: InferenceRequest):
        return join_shortest_queue(replicas)


class MatchAffinityRouter(Router):
    """Route by match degree against each replica's resident rows.

    The serving analogue of the paper's Match stage one level up: a
    replica that just served this user cluster still holds most of the
    feature rows the request's fan-out will want, so sending the
    request there turns into cache hits instead of PCIe traffic. The
    score is ``match_degree(request.seeds, replica.resident_nodes)``;
    when no replica clears ``threshold`` (cold start, disjoint users)
    the policy degrades to JSQ so affinity never starves load
    balancing. Ties break to the lowest replica index.

    **Bounded load.** Pure affinity hotspots: one popular user cluster
    pins its replica while the rest idle, and the hot queue's delay
    swamps everything residency saved. Affinity therefore only
    considers replicas within ``load_slack`` admitted requests of the
    shortest queue — the bounded-load variant of consistent-hashing
    routers — so the policy trades at most ``load_slack`` positions of
    queueing for locality.
    """

    name = "match-affinity"

    def __init__(self, threshold: float = 0.125,
                 load_slack: int = 4) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if load_slack < 0:
            raise ValueError("load_slack must be >= 0")
        self.threshold = float(threshold)
        self.load_slack = int(load_slack)

    def choose(self, replicas: list, request: InferenceRequest):
        seeds = np.asarray(request.seeds)
        min_load = min(r.load for r in replicas)
        best = None
        best_score = -1.0
        for replica in replicas:
            if replica.load > min_load + self.load_slack:
                continue
            resident = replica.resident_nodes
            if len(resident) == 0:
                continue
            score = match_degree(seeds, resident)
            if score > best_score + 1e-12:
                best, best_score = replica, score
        if best is None or best_score < self.threshold:
            return join_shortest_queue(replicas)
        return best


#: Registry of routing policies (CLI/API names -> factory).
ROUTER_POLICIES = {
    "round-robin": RoundRobinRouter,
    "jsq": JoinShortestQueueRouter,
    "match-affinity": MatchAffinityRouter,
}


def build_router(policy: str, match_threshold: float = 0.125) -> Router:
    """Instantiate a registered policy by name."""
    if policy not in ROUTER_POLICIES:
        raise ValueError(
            f"unknown routing policy {policy!r}; registered: "
            f"{sorted(ROUTER_POLICIES)}")
    if policy == "match-affinity":
        return MatchAffinityRouter(threshold=match_threshold)
    return ROUTER_POLICIES[policy]()
