"""Queue-driven replica autoscaling for the serving fleet.

The :class:`Autoscaler` watches two signals the fleet already measures —
an EWMA of mean queue occupancy across live replicas, and a running p99
latency estimate over the most recent completions — and decides between
three actions: add a replica, drain one, or hold. Two guard rails keep
it honest:

* **cooldown** — after any scale action the controller holds for
  ``cooldown_s`` of simulated time, so one burst cannot trigger a
  thrash storm;
* **hysteresis** — the drain threshold sits well below the add
  threshold (``drain_occupancy < add_occupancy``), so the controller
  never flaps add->drain on a signal hovering near one line. The
  no-flap property (no add immediately followed by a drain within one
  cooldown window) is pinned by a property test.

Decisions are pure functions of the observed signals and the
controller's own state — no randomness — so fleet runs replay
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalerConfig:
    """Controller knobs (thresholds are fractions of queue capacity)."""

    enabled: bool = False
    #: Scale up when EWMA occupancy exceeds this fraction of capacity.
    add_occupancy: float = 0.75
    #: Scale down when EWMA occupancy falls below this fraction.
    drain_occupancy: float = 0.15
    #: Also scale up when the p99 estimate exceeds this (seconds);
    #: <= 0 disables the latency trigger.
    add_p99_s: float = 0.0
    #: Seconds between signal samples.
    interval_s: float = 0.01
    #: Minimum simulated seconds between scale actions.
    cooldown_s: float = 0.05
    #: EWMA smoothing factor per sample (1.0 = no smoothing).
    alpha: float = 0.3
    min_replicas: int = 1
    max_replicas: int = 8
    #: Completions the p99 estimate is computed over.
    latency_window: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.drain_occupancy >= self.add_occupancy:
            raise ValueError(
                "hysteresis requires drain_occupancy < add_occupancy")
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action, as recorded in the fleet report."""

    time: float
    #: "add" or "drain".
    action: str
    #: Live replica count after the action took effect.
    replicas: int
    #: The EWMA occupancy that drove the decision.
    occupancy: float
    #: The p99 estimate at decision time (0.0 when unavailable).
    p99: float


class Autoscaler:
    """EWMA + hysteresis + cooldown replica-count controller."""

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self._ewma: float | None = None
        self._latencies: list = []
        self._last_action_at = -float("inf")
        self.events: list = []

    @property
    def occupancy_ewma(self) -> float:
        return 0.0 if self._ewma is None else self._ewma

    def observe_latency(self, latency: float) -> None:
        """Feed one completed request's end-to-end latency."""
        self._latencies.append(latency)
        window = self.config.latency_window
        if len(self._latencies) > 2 * window:
            del self._latencies[:-window]

    def p99_estimate(self) -> float:
        """p99 over the recent-latency window (0.0 until data exists)."""
        window = self._latencies[-self.config.latency_window:]
        if not window:
            return 0.0
        ordered = sorted(window)
        index = min(len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def observe_occupancy(self, occupancy: float) -> float:
        """Fold one occupancy sample (mean fraction of queue capacity
        across live replicas) into the EWMA; returns the new EWMA."""
        if self._ewma is None:
            self._ewma = occupancy
        else:
            alpha = self.config.alpha
            self._ewma = alpha * occupancy + (1 - alpha) * self._ewma
        return self._ewma

    def decide(self, now: float, live_replicas: int) -> str:
        """"add", "drain" or "hold" for the current signals.

        Cooldown gates *all* actions; hysteresis (the dead band between
        the two thresholds) guarantees consecutive decisions never
        reverse each other without the signal crossing the full band.
        """
        cfg = self.config
        if now - self._last_action_at < cfg.cooldown_s:
            return "hold"
        occupancy = self.occupancy_ewma
        p99 = self.p99_estimate()
        wants_add = occupancy > cfg.add_occupancy or (
            cfg.add_p99_s > 0 and p99 > cfg.add_p99_s)
        if wants_add and live_replicas < cfg.max_replicas:
            self._record(now, "add", live_replicas + 1, occupancy, p99)
            return "add"
        if (occupancy < cfg.drain_occupancy and not wants_add
                and live_replicas > cfg.min_replicas):
            self._record(now, "drain", live_replicas - 1, occupancy, p99)
            return "drain"
        return "hold"

    def _record(self, now, action, replicas, occupancy, p99) -> None:
        self._last_action_at = now
        self.events.append(ScaleEvent(time=now, action=action,
                                      replicas=replicas,
                                      occupancy=occupancy, p99=p99))
