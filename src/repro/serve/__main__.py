"""Serve a synthetic inference workload from the command line.

Usage::

    python -m repro.serve --framework fastgl --framework dgl --rate 800
    python -m repro.serve --dataset smoke --rate 50000 --requests 400
    python -m repro.serve --dataset smoke --check-baseline \\
        benchmarks/results/serve_baseline.json          # the CI smoke gate

Each selected framework serves the *same* deterministic request
schedule; the report compares p50/p95/p99 latency, throughput, shed and
deadline-drop counts, and GPU occupancy. Every run verifies that the
exported serving timeline reconciles with the event-loop makespan; the
``--check-baseline`` mode additionally gates the instrumented metrics
(including the latency summary) against a committed snapshot via
:mod:`repro.obs.regress`.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.config import RunConfig
from repro.obs import instrumented, to_snapshot
from repro.obs.regress import build_baseline, check, format_violation
from repro.serve.autoscale import AutoscalerConfig
from repro.serve.cache_tier import CacheTierConfig
from repro.serve.fleet import FleetReport, FleetSpec, simulate_fleet
from repro.serve.routing import ROUTER_POLICIES
from repro.serve.server import ServeConfig, ServeReport, simulate
from repro.utils.format import ascii_table

#: Reconciliation tolerance between timeline extent and makespan.
RECONCILE_TOL = 1e-6


def smoke_dataset():
    """A tiny self-contained dataset for the CI smoke gate (never reads
    the named dataset registry; mirrors ``repro.obs.regress``)."""
    from repro.graph.datasets import Dataset, DatasetSpec, PaperScale

    spec = DatasetSpec(
        name="serve-smoke",
        num_nodes=3000,
        avg_degree=10.0,
        feature_dim=32,
        num_classes=8,
        train_fraction=0.3,
        paper=PaperScale(300_000, 3_000_000, 1 << 30),
    )
    return Dataset(spec, seed=0)


def fleet_smoke_dataset():
    """The fleet gate's dataset (see
    :func:`repro.serve.fleet.fleet_demo_dataset`)."""
    from repro.serve.fleet import fleet_demo_dataset

    return fleet_demo_dataset()


def _get_dataset(name: str, seed: int):
    if name == "smoke":
        return smoke_dataset()
    if name == "fleet-smoke":
        return fleet_smoke_dataset()
    from repro.graph.datasets import get_dataset

    return get_dataset(name, seed=seed)


def _report_row(report: ServeReport) -> list:
    return [
        report.framework,
        round(report.p50 * 1e3, 3),
        round(report.p95 * 1e3, 3),
        round(report.p99 * 1e3, 3),
        round(report.throughput, 1),
        report.num_completed,
        report.num_shed,
        report.num_dropped,
        round(report.mean_batch_size, 1),
        f"{report.occupancy:.0%}",
    ]


def _publish_summary(registry, report: ServeReport) -> None:
    """Expose the latency summary as gauges so the baseline gate diffs
    p50/p95/p99/throughput directly, not only histogram aggregates."""
    for metric, value in (
        ("repro_serve_p50_seconds", report.p50),
        ("repro_serve_p95_seconds", report.p95),
        ("repro_serve_p99_seconds", report.p99),
        ("repro_serve_throughput_rps", report.throughput),
        ("repro_serve_makespan_seconds", report.makespan),
    ):
        registry.gauge(metric, "Serving summary statistic").labels(
            framework=report.framework).set(float(value))


def _fleet_row(policy: str, report: FleetReport) -> list:
    return [
        policy,
        len(report.replicas),
        round(report.p50 * 1e3, 3),
        round(report.p99 * 1e3, 3),
        round(report.throughput, 1),
        f"{report.availability:.1%}",
        f"{report.device_hit_rate:.1%}",
        f"{report.tier_hit_rate:.1%}",
        report.rerouted,
        report.outage_shed,
    ]


def _publish_fleet_summary(registry, policy: str,
                           report: FleetReport) -> None:
    for metric, value in (
        ("repro_fleet_p50_seconds", report.p50),
        ("repro_fleet_p99_seconds", report.p99),
        ("repro_fleet_throughput_rps", report.throughput),
        ("repro_fleet_device_hit_rate", report.device_hit_rate),
        ("repro_fleet_tier_hit_rate", report.tier_hit_rate),
        ("repro_fleet_replicas", float(len(report.replicas))),
    ):
        registry.gauge(metric, "Fleet summary statistic").labels(
            policy=policy).set(float(value))


def run_fleet(args, parser) -> tuple:
    """The ``--fleet`` mode: one framework, every requested router."""
    framework = (args.framework or ["fastgl"])[0]
    policies = args.router or list(ROUTER_POLICIES)
    unknown = [p for p in policies if p not in ROUTER_POLICIES]
    if unknown:
        parser.error(f"unknown router(s): {unknown}; "
                     f"registered: {sorted(ROUTER_POLICIES)}")
    fanouts = tuple(int(f) for f in args.fanouts.split(",") if f)
    run_config = RunConfig(num_gpus=1, fanouts=fanouts, seed=args.seed)
    serve_config = ServeConfig(
        rate=args.rate,
        num_requests=args.requests,
        arrival=args.arrival,
        seeds_per_request=args.seeds_per_request,
        max_batch=args.max_batch,
        batch_window_s=args.window_ms / 1e3,
        queue_capacity=args.queue_cap,
        slo_s=args.slo_ms / 1e3,
        seed=args.seed,
        num_users=args.users,
    )
    dataset = _get_dataset(args.dataset, args.seed)

    reports: dict = {}
    with instrumented() as registry:
        for policy in policies:
            fleet = FleetSpec(
                num_replicas=args.replicas,
                router=policy,
                match_threshold=args.match_threshold,
                autoscaler=AutoscalerConfig(enabled=args.autoscale),
                cache=CacheTierConfig(enabled=args.cache_tier),
            )
            report = simulate_fleet(framework, dataset,
                                    run_config=run_config,
                                    serve_config=serve_config,
                                    fleet=fleet)
            reports[policy] = report
            _publish_fleet_summary(registry, policy, report)
        snapshot = to_snapshot(registry)

    print(ascii_table(
        ["router", "replicas", "p50_ms", "p99_ms", "req/s", "avail",
         "dev_hit", "tier_hit", "rerouted", "outage"],
        [_fleet_row(policy, reports[policy]) for policy in policies],
    ))

    failures = 0
    for policy, report in reports.items():
        delta = abs(report.timeline_extent - report.makespan)
        if report.reconciles(RECONCILE_TOL):
            print(f"{policy}: fleet timeline reconciles with makespan "
                  f"({report.makespan:.6f}s, |delta| = {delta:.2e})")
        else:
            print(f"{policy}: FLEET TIMELINE MISMATCH: extent "
                  f"{report.timeline_extent!r} vs makespan "
                  f"{report.makespan!r}", file=sys.stderr)
            failures += 1

    if "round-robin" in reports and "match-affinity" in reports:
        rr, ma = reports["round-robin"], reports["match-affinity"]
        if ma.p99 and rr.p99:
            print(f"match-affinity over round-robin: "
                  f"p99 {rr.p99 / ma.p99:.2f}x, device hit "
                  f"{rr.device_hit_rate:.1%} -> {ma.device_hit_rate:.1%}")
    return reports, snapshot, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Simulate online sampled-GNN inference serving.",
    )
    parser.add_argument("--framework", action="append", default=None,
                        metavar="NAME",
                        help="framework to serve with (repeatable; "
                             "default: dgl and fastgl)")
    parser.add_argument("--dataset", default="smoke",
                        help='dataset name, or "smoke" for the tiny '
                             "self-contained graph (default: %(default)s)")
    parser.add_argument("--rate", type=float, default=50_000.0,
                        help="mean arrival rate, req/s (default: %(default)s)")
    parser.add_argument("--requests", type=int, default=400,
                        help="number of requests (default: %(default)s)")
    parser.add_argument("--arrival", default="poisson",
                        choices=("poisson", "bursty"),
                        help="arrival process (default: %(default)s)")
    parser.add_argument("--seeds-per-request", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--window-ms", type=float, default=2.0,
                        help="micro-batch window in milliseconds "
                             "(default: %(default)s)")
    parser.add_argument("--queue-cap", type=int, default=128)
    parser.add_argument("--slo-ms", type=float, default=500.0,
                        help="latency SLO in ms; 0 disables deadlines")
    parser.add_argument("--fanouts", default="5,10,15",
                        help="comma-separated sampling fanouts")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="write per-framework Chrome traces here")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        metavar="PATH", help="write the summary as JSON")
    parser.add_argument("--check-baseline", metavar="PATH", default=None,
                        help="gate instrumented serve metrics against a "
                             "committed baseline (repro.obs.regress)")
    parser.add_argument("--write-baseline", metavar="PATH", default=None,
                        help="write/refresh the baseline from this run")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="default relative tolerance when writing a "
                             "baseline (default: %(default)s)")
    parser.add_argument("--fleet", action="store_true",
                        help="fleet mode: run one framework behind each "
                             "requested --router and compare policies")
    parser.add_argument("--replicas", type=int, default=4,
                        help="fleet replicas at t=0 (default: %(default)s)")
    parser.add_argument("--router", action="append", default=None,
                        metavar="POLICY",
                        help="routing policy (repeatable; default: all "
                             "registered policies)")
    parser.add_argument("--users", type=int, default=32,
                        help="simulated user-population clusters for the "
                             "fleet workload (default: %(default)s)")
    parser.add_argument("--match-threshold", type=float, default=0.125,
                        help="match-affinity score floor before JSQ "
                             "fallback (default: %(default)s)")
    parser.add_argument("--autoscale", action="store_true",
                        help="enable the fleet autoscaler")
    parser.add_argument("--cache-tier", action="store_true",
                        help="enable the shared embedding cache tier")
    args = parser.parse_args(argv)

    if args.fleet:
        reports, snapshot, failures = run_fleet(args, parser)
        if args.write_baseline:
            baseline = build_baseline(snapshot,
                                      default_tolerance=args.tolerance)
            baseline["suite"] = sorted(reports)
            with open(args.write_baseline, "w") as handle:
                json.dump(baseline, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote baseline: {args.write_baseline} "
                  f"({len(baseline['metrics'])} metrics)")
            return 0
        if args.check_baseline:
            try:
                with open(args.check_baseline) as handle:
                    baseline = json.load(handle)
            except FileNotFoundError:
                print(f"no baseline at {args.check_baseline}; create one "
                      "with --write-baseline", file=sys.stderr)
                return 2
            violations = check(snapshot, baseline)
            checked = len(baseline.get("metrics", {}))
            if violations:
                print(f"{len(violations)} of {checked} fleet metrics "
                      "regressed:")
                for violation in violations:
                    print("  " + format_violation(violation))
                return 1
            print(f"ok: {checked} fleet metrics within tolerance")
        return 1 if failures else 0

    frameworks = args.framework or ["dgl", "fastgl"]
    from repro.frameworks import available_frameworks

    unknown = [n for n in frameworks if n not in available_frameworks()]
    if unknown:
        parser.error(f"unknown framework(s): {unknown}; "
                     f"available: {list(available_frameworks())}")
    fanouts = tuple(int(f) for f in args.fanouts.split(",") if f)
    run_config = RunConfig(num_gpus=1, fanouts=fanouts, seed=args.seed)
    serve_config = ServeConfig(
        rate=args.rate,
        num_requests=args.requests,
        arrival=args.arrival,
        seeds_per_request=args.seeds_per_request,
        max_batch=args.max_batch,
        batch_window_s=args.window_ms / 1e3,
        queue_capacity=args.queue_cap,
        slo_s=args.slo_ms / 1e3,
        seed=args.seed,
    )
    dataset = _get_dataset(args.dataset, args.seed)

    reports: dict = {}
    with instrumented() as registry:
        for name in frameworks:
            report = simulate(name, dataset, run_config=run_config,
                              serve_config=serve_config)
            reports[name] = report
            _publish_summary(registry, report)
        snapshot = to_snapshot(registry)

    rows = [_report_row(reports[name]) for name in frameworks]
    print(ascii_table(
        ["framework", "p50_ms", "p95_ms", "p99_ms", "req/s", "done",
         "shed", "dropped", "batch", "occupancy"],
        rows,
    ))

    failures = 0
    for name in frameworks:
        report = reports[name]
        delta = abs(report.timeline_extent - report.makespan)
        if report.reconciles(RECONCILE_TOL):
            print(f"{name}: timeline reconciles with makespan "
                  f"({report.makespan:.6f}s, |delta| = {delta:.2e})")
        else:
            print(f"{name}: TIMELINE MISMATCH: extent "
                  f"{report.timeline_extent!r} vs makespan "
                  f"{report.makespan!r}", file=sys.stderr)
            failures += 1

    if "dgl" in reports and "fastgl" in reports:
        dgl, fast = reports["dgl"], reports["fastgl"]
        if fast.p50 and dgl.p50:
            print(f"fastgl serving speedup over dgl: "
                  f"p50 {dgl.p50 / fast.p50:.2f}x, "
                  f"p99 {dgl.p99 / fast.p99:.2f}x, "
                  f"throughput {fast.throughput / dgl.throughput:.2f}x")

    if args.trace:
        args.trace.mkdir(parents=True, exist_ok=True)
        for name, report in reports.items():
            path = args.trace / f"serve_{name}.json"
            count = report.write_chrome_trace(path)
            print(f"wrote {path} ({count} events)")

    if args.json:
        payload = {
            name: {
                "p50_s": report.p50, "p95_s": report.p95,
                "p99_s": report.p99, "throughput_rps": report.throughput,
                "completed": report.num_completed,
                "shed": report.num_shed, "dropped": report.num_dropped,
                "makespan_s": report.makespan,
                "occupancy": report.occupancy,
            }
            for name, report in reports.items()
        }
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True)
                             + "\n")
        print(f"wrote {args.json}")

    if args.write_baseline:
        baseline = build_baseline(snapshot,
                                  default_tolerance=args.tolerance)
        baseline["suite"] = list(frameworks)
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline: {args.write_baseline} "
              f"({len(baseline['metrics'])} metrics)")
        return 0

    if args.check_baseline:
        try:
            with open(args.check_baseline) as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"no baseline at {args.check_baseline}; create one with "
                  "--write-baseline", file=sys.stderr)
            return 2
        violations = check(snapshot, baseline)
        checked = len(baseline.get("metrics", {}))
        if violations:
            print(f"{len(violations)} of {checked} serve metrics regressed:")
            for violation in violations:
                print("  " + format_violation(violation))
            return 1
        print(f"ok: {checked} serve metrics within tolerance")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
