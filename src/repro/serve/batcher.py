"""Dynamic micro-batching with a deadline window and Match-aware ordering.

Requests are coalesced into micro-batches under two triggers — whichever
fires first:

* **size**: the batch reaches ``max_batch`` requests;
* **window**: ``window_s`` seconds elapsed since the batch opened.

The window bounds the batching delay any admitted request can be charged
(:attr:`MicroBatch.batching_delay` never exceeds it — the invariant the
property tests pin down). When several closed batches are waiting for the
GPU (the backlog regime), FastGL-style profiles pick the next batch by
**match degree** against the feature rows still resident from the batch
just served — the serving analogue of the paper's Greedy Reorder
(Algorithm 1), turning backlog into PCIe traffic saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.match import match_degree
from repro.core.reorder import greedy_reorder, match_degree_matrix
from repro.serve.request import InferenceRequest


@dataclass
class MicroBatch:
    """A closed set of requests served by one GPU pass."""

    batch_id: int
    requests: list
    #: When the first request was taken from the admission queue.
    opened_at: float
    #: When membership froze (size or window trigger).
    closed_at: float
    #: "size" | "window" | "flush" — which trigger closed the batch.
    trigger: str = "window"
    #: Filled by the server: service interval on the GPU.
    service_start: float | None = None
    service_end: float | None = None

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def seeds(self) -> np.ndarray:
        """Union of the member requests' seed nodes (sorted unique)."""
        if not self.requests:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([r.seeds for r in self.requests]))

    @property
    def batching_delay(self) -> float:
        """Seconds the batch spent open — bounded by the window."""
        return self.closed_at - self.opened_at

    @property
    def earliest_deadline(self) -> float:
        return min((r.deadline for r in self.requests), default=float("inf"))


class MicroBatcher:
    """Incremental batch former (one batch open at a time).

    Pure state machine — the server's event process feeds it requests and
    clock readings; it never touches the event loop, so its invariants
    (never oversize, never hold a batch open past the window) are
    testable without simulation plumbing.
    """

    def __init__(self, max_batch: int, window_s: float) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self._open: list = []
        self._opened_at = 0.0
        self._next_id = 0

    @property
    def has_open_batch(self) -> bool:
        return bool(self._open)

    @property
    def close_deadline(self) -> float:
        """Absolute time the open batch must close by (window trigger)."""
        if not self._open:
            raise RuntimeError("no open batch")
        return self._opened_at + self.window_s

    def open(self, request: InferenceRequest, now: float) -> bool:
        """Start a new batch with its first request; True when the size
        trigger already fired (``max_batch == 1``)."""
        if self._open:
            raise RuntimeError("previous batch still open")
        self._open = [request]
        self._opened_at = now
        return len(self._open) >= self.max_batch

    def add(self, request: InferenceRequest, now: float) -> bool:
        """Join ``request`` to the open batch; True when the size trigger
        fired (the batch must close now)."""
        if not self._open:
            raise RuntimeError("no open batch; call open() first")
        if len(self._open) >= self.max_batch:
            raise RuntimeError("batch already full")
        if now > self.close_deadline + 1e-12:
            raise RuntimeError(
                f"add at t={now:.6f} violates the batching window "
                f"(closes at {self.close_deadline:.6f})"
            )
        self._open.append(request)
        return len(self._open) >= self.max_batch

    def close(self, now: float, trigger: str = "window") -> MicroBatch:
        """Freeze and return the open batch."""
        if not self._open:
            raise RuntimeError("no open batch")
        batch = MicroBatch(
            batch_id=self._next_id,
            requests=self._open,
            opened_at=self._opened_at,
            closed_at=min(now, self._opened_at + self.window_s)
            if trigger == "window" else now,
            trigger=trigger,
        )
        self._next_id += 1
        self._open = []
        return batch

    def drain_open(self) -> list:
        """Abandon the open batch, returning its requests (replica loss:
        the fleet re-routes them instead of letting them die with the
        batcher). No batch ID is consumed; a later window timer finding
        the batcher empty must not close anything."""
        requests, self._open = self._open, []
        return requests


def select_next_batch(pending: list, resident_nodes: np.ndarray) -> int:
    """Index of the pending batch with the highest match degree against
    the currently resident feature rows.

    One greedy step of Algorithm 1 applied online: the paper reorders a
    presampled window ahead of time, a server reorders whatever backlog
    exists at GPU-free time. Ties (including the no-residency cold start)
    fall back to FIFO — index 0.
    """
    if not pending:
        raise ValueError("pending must be non-empty")
    if len(pending) == 1 or len(resident_nodes) == 0:
        return 0
    best, best_score = 0, -1.0
    for i, batch in enumerate(pending):
        score = match_degree(resident_nodes, batch.seeds)
        if score > best_score + 1e-12:
            best, best_score = i, score
    return best


def plan_dispatch_order(batches: list) -> list:
    """Offline oracle: greedy match-degree chain over whole batches.

    Used by tests and the serving experiment to quantify how much of the
    optimal-chain reuse the online :func:`select_next_batch` policy
    recovers.
    """
    if len(batches) < 3:
        return list(range(len(batches)))
    # MicroBatch.seeds is already ``np.unique`` output, so the dedup
    # pass of the pair-counting matrix kernel can be skipped; the chain
    # itself runs the blocked top-k walk (bit-identical to the legacy
    # sweep, lowest index winning ties).
    matrix = match_degree_matrix([b.seeds for b in batches],
                                 assume_unique=True)
    return greedy_reorder(matrix)
