"""A fleet-shared embedding cache tier with TTL staleness.

Between each replica's device-resident Match cache and host DRAM sits
one fleet-wide tier holding recently fetched embedding rows — the
simulated analogue of a memcached/Redis side-cache in front of the
feature store. A row found **fresh** (inserted within ``ttl_s``) skips
part of the modeled host fetch (``io_savings`` of the per-row memory-IO
cost); a row found **stale** counts separately — it must be re-fetched,
which is exactly the consistency price a TTL cache pays for embeddings
that retrain underneath it.

The row index lives in ordinary process memory; the row *payload* lives
in a :class:`repro.parallel.shm.SharedArena` slab (one slot per cached
row) when shared memory is available, with a plain ``numpy`` slab as
the fallback — same observable behavior either way, which the tests
pin. Eviction is deterministic FIFO by insertion order (slot reuse in
arrival order), so fleet runs replay bit-identically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheTierConfig:
    """Sizing and staleness knobs of the shared tier."""

    enabled: bool = False
    #: Rows the tier can hold (FIFO eviction beyond this).
    capacity_rows: int = 4096
    #: Bytes per cached row payload (feature dim x dtype size).
    row_bytes: int = 256
    #: Seconds a row stays fresh; <= 0 means rows never go stale.
    ttl_s: float = 1.0
    #: Fraction of the per-row host-fetch cost a fresh hit saves.
    io_savings: float = 0.8

    def __post_init__(self) -> None:
        if self.capacity_rows < 1:
            raise ValueError("capacity_rows must be >= 1")
        if self.row_bytes < 1:
            raise ValueError("row_bytes must be >= 1")
        if not 0.0 <= self.io_savings <= 1.0:
            raise ValueError("io_savings must be in [0, 1]")


@dataclass
class CacheTierStats:
    """Aggregate counters over the tier's lifetime."""

    lookups: int = 0
    hits: int = 0
    stale: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def stale_rate(self) -> float:
        return self.stale / self.lookups if self.lookups else 0.0


class CacheTier:
    """Shared-memory embedding row cache with TTL freshness.

    ``lookup(nodes, now)`` partitions the requested rows into
    ``(fresh_hits, stale, misses)``; ``insert(nodes, now)`` (re)fills
    rows, evicting the oldest entries FIFO when full. All decisions are
    pure functions of the call sequence — no clocks, no RNG.
    """

    def __init__(self, config: CacheTierConfig, arena=None) -> None:
        self.config = config
        self.stats = CacheTierStats()
        #: node id -> (slot, inserted_at); OrderedDict gives FIFO age.
        self._index: OrderedDict = OrderedDict()
        self._free_slots = list(range(config.capacity_rows - 1, -1, -1))
        self._owns_arena = False
        nbytes = config.capacity_rows * config.row_bytes
        if arena is None:
            arena = self._try_arena(nbytes)
            self._owns_arena = arena is not None
        self._arena = arena
        if self._arena is None:
            # Fallback slab: same shape/behavior, private memory.
            self._slab = np.zeros(nbytes, dtype=np.uint8)

    @staticmethod
    def _try_arena(nbytes: int):
        try:
            from repro.parallel.shm import SharedArena
            return SharedArena(nbytes=nbytes)
        except Exception:  # /dev/shm unavailable, size limits, ...
            return None

    @property
    def backed_by_shm(self) -> bool:
        return self._arena is not None

    def __len__(self) -> int:
        return len(self._index)

    def _row(self, slot: int) -> np.ndarray:
        offset = slot * self.config.row_bytes
        if self._arena is not None:
            return np.ndarray((self.config.row_bytes,), dtype=np.uint8,
                              buffer=self._arena.buf, offset=offset)
        return self._slab[offset:offset + self.config.row_bytes]

    def _fresh(self, inserted_at: float, now: float) -> bool:
        ttl = self.config.ttl_s
        return ttl <= 0 or (now - inserted_at) <= ttl

    def lookup(self, nodes: np.ndarray, now: float):
        """Partition ``nodes`` into ``(fresh_hits, stale, misses)``.

        Stale rows stay indexed (their slot is reused on re-insert);
        only the counters distinguish them from fresh hits.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        hits, stale, misses = [], [], []
        for node in nodes.tolist():
            entry = self._index.get(node)
            if entry is None:
                misses.append(node)
            elif self._fresh(entry[1], now):
                hits.append(node)
            else:
                stale.append(node)
        self.stats.lookups += len(nodes)
        self.stats.hits += len(hits)
        self.stats.stale += len(stale)
        self.stats.misses += len(misses)
        return (np.asarray(hits, dtype=np.int64),
                np.asarray(stale, dtype=np.int64),
                np.asarray(misses, dtype=np.int64))

    def insert(self, nodes: np.ndarray, now: float) -> int:
        """(Re)fill rows for ``nodes`` at time ``now``; returns how many
        evictions that cost. Re-inserting a present row refreshes its
        timestamp in place (no eviction)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        evicted = 0
        for node in nodes.tolist():
            entry = self._index.pop(node, None)
            if entry is not None:
                slot = entry[0]
            else:
                if not self._free_slots:
                    _, (slot, _) = self._index.popitem(last=False)
                    evicted += 1
                else:
                    slot = self._free_slots.pop()
                # Touch the payload slot: the write is what a real tier
                # pays; the simulation only needs the addressing right.
                tag = np.frombuffer(np.int64(node).tobytes(),
                                    dtype=np.uint8)
                width = min(len(tag), self.config.row_bytes)
                self._row(slot)[:width] = tag[:width]
            self._index[node] = (slot, now)
            self.stats.inserts += 1
        self.stats.evictions += evicted
        return evicted

    def close(self) -> None:
        """Release the arena segment (idempotent; owning tiers only)."""
        if self._owns_arena and self._arena is not None:
            self._arena.close()
            self._arena = None
            self._slab = np.zeros(0, dtype=np.uint8)

    def __enter__(self) -> "CacheTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
