"""Per-framework serving profiles: the hot path behind one micro-batch.

A :class:`ServingProfile` bundles exactly the strategy hooks a
:class:`~repro.frameworks.base.Framework` already defines — sampler +
ID map, feature loader, compute cost mode, topology prefetch — into the
three-phase service-time model of one inference micro-batch:

    sample (draw + ID map)  ->  memory IO (feature fetch)  ->  aggregate

so ``dgl`` serves with the 3-kernel ID map, naive loads and naive
aggregation while ``fastgl`` serves with Fused-Map, Match residency
(kept *across* micro-batches — the server never resets it) and the
Memory-Aware kernel. The serving-latency gap between the two is the
paper's Fig. 9 speedup transplanted onto the request path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import RunConfig
from repro.core.memory_aware import ComputeCostModel, model_profile
from repro.gpu.pcie import link_from_cost
from repro.utils.rng import RngFactory


@dataclass
class ServiceTimes:
    """Modeled seconds of one micro-batch's three serving phases."""

    sample: float
    memory_io: float
    compute: float

    @property
    def total(self) -> float:
        return self.sample + self.memory_io + self.compute


class ServingProfile:
    """One framework's modeled hot path for online inference."""

    def __init__(self, framework, dataset, config: RunConfig,
                 model: str = "gcn") -> None:
        self.framework = framework
        self.name = framework.name
        self.dataset = dataset
        self.config = config
        self.model = model
        rngs = RngFactory(config.seed)
        self.sampler = framework.make_sampler(
            dataset, config, rngs.child("serve-sampler"))
        self.loader = framework.make_loader(
            dataset, config, self.sampler, rngs.child("serve-loader"))
        self.link = link_from_cost(framework.spec, config.cost)
        self.cost_model = ComputeCostModel(
            framework.spec, config.cost, framework.compute_mode)
        self.model_profile = model_profile(
            model, dataset.feature_dim, dataset.num_classes,
            hidden_dim=config.hidden_dim, num_layers=config.num_layers,
        )
        #: FastGL-style profiles reorder the dispatch backlog by match
        #: degree (the serving analogue of Greedy Reorder).
        self.reorder_backlog = bool(getattr(framework, "use_reorder", False))

    @classmethod
    def build(cls, framework, dataset, config: RunConfig | None = None,
              model: str = "gcn", spec=None) -> "ServingProfile":
        """Accepts a framework name, class, or instance."""
        from repro.frameworks import create

        if isinstance(framework, str):
            kwargs = {"spec": spec} if spec is not None else {}
            framework = create(framework, **kwargs)
        elif isinstance(framework, type):
            framework = framework(**({"spec": spec} if spec else {}))
        return cls(framework, dataset, config or RunConfig(num_gpus=1),
                   model=model)

    @property
    def resident_nodes(self) -> np.ndarray:
        """Feature rows currently resident on the device (Match state);
        empty for loaders without cross-batch residency."""
        state = getattr(self.loader, "_state", None)
        if state is None:
            return np.empty(0, dtype=np.int64)
        return state.resident

    def service(self, seeds: np.ndarray) -> tuple:
        """Run one micro-batch through the modeled hot path.

        Returns ``(times, subgraph, transfer_report)``. Mutates the
        loader's residency state — consecutive calls model consecutive
        batches on the same device, which is what lets Match reuse rows
        across micro-batches.
        """
        cost = self.config.cost
        subgraph = self.sampler.sample(np.asarray(seeds, dtype=np.int64))
        sample_t = (self.sampler.modeled_sample_time(subgraph, cost)
                    + subgraph.idmap_report.modeled_time(cost))
        transfer = self.loader.plan(subgraph)
        comp = self.cost_model.subgraph_report(subgraph, self.model_profile)
        io_t = self.framework._io_time(transfer, comp, self.link, cost,
                                       trainers=1)
        times = ServiceTimes(sample=sample_t, memory_io=io_t,
                             compute=comp.total_time)
        return times, subgraph, transfer
