"""Cost-model calibration constants.

The reproduction runs every experiment *functionally* (real sampling, real
hash-table probes, real numpy training) and converts the counted work into
modeled seconds. Hardware facts (bandwidths, capacities — the paper's
Table 3) live in :mod:`repro.gpu.spec`; this module holds the *calibration*
constants of the linear cost model: per-operation throughputs and latencies
that are not pure datasheet numbers.

Calibration philosophy: constants are set once, to magnitudes consistent
with published microbenchmarks of Ampere-class GPUs, and are never tuned
per-experiment. The paper-vs-measured comparisons in EXPERIMENTS.md are
about *shape* (who wins, by roughly what factor), which is governed by the
counted work, not by these constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModelConfig:
    """Throughputs/latencies converting counted work into modeled seconds."""

    # --- Sampling ---------------------------------------------------------
    #: Neighbor draws per second for a GPU sampler (DGL-style, massive
    #: thread parallelism; order 1e9 draws/s on Ampere).
    gpu_sample_edges_per_s: float = 1.0e9
    #: Neighbor draws per second for a CPU sampler (PyG-style; tens of
    #: millions/s across cores). The ~50x gap reproduces PyG's 97%-in-sample
    #: profile from the paper's Figure 1.
    cpu_sample_edges_per_s: float = 2.0e7
    #: Fixed kernel-launch / loader overhead per sampling hop.
    sample_hop_overhead_s: float = 20e-6

    # --- ID map -----------------------------------------------------------
    #: Aggregate atomic operations per second across the device (atomicCAS /
    #: atomicAdd on global memory, moderately contended).
    atomic_ops_per_s: float = 2.0e9
    #: Plain hash-table reads per second (lookup kernel, step 3 of Fig. 4).
    table_lookups_per_s: float = 8.0e9
    #: Amortized cost per synchronized local-ID assignment in the DGL-style
    #: ID map (step 2 of Fig. 4 requires thread synchronization per unique
    #: global ID; this constant is what Fused-Map eliminates).
    sync_cost_per_unique_s: float = 4.0e-9
    #: Fixed cost per kernel launch (applies to each ID-map step).
    kernel_launch_s: float = 8e-6
    #: CPU-side ID map throughput (ids/second; PyG maps on the host).
    cpu_idmap_ids_per_s: float = 3.0e7

    # --- Memory IO --------------------------------------------------------
    #: Fixed latency per host->device transfer (driver + DMA setup).
    pcie_transfer_latency_s: float = 15e-6
    #: Host-side gather throughput: assembling non-contiguous feature rows
    #: into a pinned staging buffer, bytes/second. Faster than the PCIe 4.0
    #: link (the paper's premise: today the *transfer* dominates memory IO;
    #: its Section 7.3 predicts the gather takes over at Grace-Hopper
    #: bandwidths).
    host_gather_bytes_per_s: float = 80e9

    # --- Out-of-core storage ----------------------------------------------
    #: NVMe sequential read bandwidth (PCIe 4.0 x4 data-center drive).
    nvme_read_bytes_per_s: float = 6.8e9
    #: Per-read-command latency of the drive (device + controller).
    nvme_read_latency_s: float = 80e-6
    #: Device IOPS ceiling for page-sized random reads.
    nvme_iops_limit: float = 1.0e6
    #: Commands a host-side (bounce-buffer) reader keeps in flight.
    nvme_host_queue_depth: int = 32
    #: Commands GPU-initiated direct access keeps in flight (GIDS-style:
    #: thousands of GPU threads each own an outstanding request).
    nvme_gpu_queue_depth: int = 4096

    # --- Computation ------------------------------------------------------
    #: Fraction of peak FLOPs attainable by the dense update GEMM.
    gemm_efficiency: float = 0.45
    #: L1/L2 hit rates of the *naive* aggregation access pattern. These are
    #: the paper's Table 2 measurements (3-5% / 15-25%); the Table 2
    #: benchmark regenerates them with the functional cache simulator, and
    #: the compute cost model uses these calibrated averages on its hot path.
    naive_l1_hit: float = 0.045
    naive_l2_hit: float = 0.19
    #: Fixed cost per GNN layer (kernel launches, bookkeeping).
    layer_overhead_s: float = 30e-6
    #: GNNAdvisor per-element preprocessing cost (neighbor grouping + node
    #: renumbering; applied to nodes + edges of every sampled subgraph).
    advisor_preprocess_s_per_elem: float = 6.0e-9
    #: Effective-bandwidth multiplier for GNNAdvisor's 2D workload
    #: management (better coalescing than naive, below Memory-Aware).
    advisor_bandwidth_gain: float = 1.6

    # --- Multi-GPU --------------------------------------------------------
    #: NCCL ring all-reduce bus bandwidth per GPU pair (bytes/s).
    nccl_bus_bytes_per_s: float = 20e9
    #: Latency per all-reduce call.
    nccl_latency_s: float = 30e-6
    #: Aggregate host memory bandwidth available to all PCIe links (two
    #: EPYC sockets; caps per-GPU transfer rate when many GPUs pull at once).
    host_aggregate_bytes_per_s: float = 80e9

    # --- Memory accounting -------------------------------------------------
    #: Fixed device-resident runtime overhead (CUDA context, framework).
    runtime_overhead_bytes: int = 1_200_000_000
    #: Multiplier for allocator slack / fragmentation on workspace buffers.
    allocator_slack: float = 1.35

    def scaled(self, **overrides: float) -> "CostModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


#: Package-wide default calibration.
DEFAULT_COST_MODEL = CostModelConfig()


@dataclass(frozen=True)
class RunConfig:
    """Configuration of one training run (shared by all frameworks).

    Mirrors the paper's Section 6.1 setup, at reproduction scale:
    batch size, sampling fanouts (hop order: ``fanouts[0]`` is the first hop
    from the seed nodes), number of simulated GPUs, and the Match-Reorder
    window ``reorder_window`` (the paper's ``n`` mini-batches sampled ahead).
    """

    batch_size: int = 256
    fanouts: tuple = (5, 10, 15)
    num_gpus: int = 2
    hidden_dim: int = 64
    num_epochs: int = 1
    #: Mini-batches sampled ahead and greedily reordered (the paper's n).
    reorder_window: int = 32
    #: Fraction of each batch drawn from a contiguous run of sorted train
    #: IDs, modeling the community-correlated splits of the real benchmarks
    #: (see :class:`repro.graph.partition.MinibatchPlan`).
    batch_locality: float = 0.6
    train_model: bool = False
    #: When set, cache-using frameworks size their feature cache as this
    #: fraction of the full feature table instead of the dataset's
    #: leftover-memory budget (the paper's Fig. 10a sweep).
    cache_ratio_override: float | None = None
    # --- Out-of-core storage tier (SSD-resident feature table) ------------
    #: Page size of the NVMe-backed feature store.
    page_bytes: int = 4096
    #: Host/device memory budget for the page cache; None sizes it as 10%
    #: of the feature table (the large-graph regime the tier targets).
    host_memory_bytes: int | None = None
    #: "direct" = GPU-initiated SSD->GPU reads (GIDS); "bounce" = classic
    #: SSD->host DRAM->GPU staging.
    storage_access: str = "direct"
    #: Page-cache policy: "partition" (BGL-style) or "lru".
    page_cache_policy: str = "partition"
    #: Mini-batches of storage reads allowed to run ahead of training when
    #: the out-of-core pipeline overlaps reads with sampling/compute.
    storage_prefetch_depth: int = 4
    seed: int = 0
    cost: CostModelConfig = field(default_factory=CostModelConfig)

    @property
    def num_layers(self) -> int:
        """Number of GNN layers implied by the sampling depth."""
        return len(self.fanouts)
