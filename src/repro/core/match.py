"""The Match process (paper Section 4.1).

Before loading a mini-batch's features, intersect its node set with the
nodes of the previous mini-batch (whose features are necessarily still on
the GPU): overlapping rows are reused in place, only the difference
(``LoadNodeID``) crosses PCIe. No extra GPU memory is consumed — the
previous batch's buffer is required anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def match_degree(nodes_a: np.ndarray, nodes_b: np.ndarray) -> float:
    """The paper's match degree ``M_ij = N_o / min(N_i, N_j)``.

    Inputs are node-ID arrays (duplicates tolerated; uniqued internally).
    """
    a = np.unique(np.asarray(nodes_a, dtype=np.int64))
    b = np.unique(np.asarray(nodes_b, dtype=np.int64))
    if len(a) == 0 or len(b) == 0:
        return 0.0
    overlap = len(np.intersect1d(a, b, assume_unique=True))
    return overlap / min(len(a), len(b))


@dataclass
class MatchResult:
    """Partition of a mini-batch's nodes into reused and loaded sets."""

    #: Node IDs whose features are already resident (``OverlapNodeID``).
    overlap_ids: np.ndarray
    #: Node IDs that must be loaded from the host (``LoadNodeID``).
    load_ids: np.ndarray

    @property
    def num_reused(self) -> int:
        return len(self.overlap_ids)

    @property
    def num_loaded(self) -> int:
        return len(self.load_ids)

    @property
    def reuse_fraction(self) -> float:
        total = self.num_reused + self.num_loaded
        if total == 0:
            return 0.0
        return self.num_reused / total


def match_split(resident: np.ndarray, wanted: np.ndarray) -> MatchResult:
    """Split ``wanted`` into overlap-with-``resident`` and must-load parts.

    ``resident`` must be sorted unique; ``wanted`` unique (any order) —
    which is what the ID map produces for a subgraph's input nodes.
    """
    wanted = np.asarray(wanted, dtype=np.int64)
    resident = np.asarray(resident, dtype=np.int64)
    if len(resident) == 0:
        return MatchResult(
            overlap_ids=np.empty(0, dtype=np.int64), load_ids=wanted.copy()
        )
    pos = np.searchsorted(resident, wanted)
    pos_clipped = np.minimum(pos, len(resident) - 1)
    is_resident = resident[pos_clipped] == wanted
    return MatchResult(
        overlap_ids=wanted[is_resident],
        load_ids=wanted[~is_resident],
    )


class MatchState:
    """Tracks the resident node set across consecutive mini-batches."""

    def __init__(self) -> None:
        self._resident = np.empty(0, dtype=np.int64)
        self._last_load_ids = np.empty(0, dtype=np.int64)

    @property
    def resident(self) -> np.ndarray:
        """Currently resident node IDs (sorted unique)."""
        return self._resident

    @property
    def last_load_ids(self) -> np.ndarray:
        """The ``LoadNodeID`` set of the most recent :meth:`step` — the
        rows whose residency is *provisional* until their transfer
        completes."""
        return self._last_load_ids

    def reset(self) -> None:
        """Forget residency (start of an epoch / device flush)."""
        self._resident = np.empty(0, dtype=np.int64)
        self._last_load_ids = np.empty(0, dtype=np.int64)

    def invalidate(self, ids: np.ndarray | None = None) -> None:
        """Remove ``ids`` from the resident set (all of it when ``None``).

        Called after a failed feature load: :meth:`step` optimistically
        marks the whole batch resident *before* the transfer runs, so a
        transfer that dies mid-flight leaves rows recorded as resident
        whose device bytes never arrived. Match must never reuse those —
        invalidating them forces the next batch to reload them through a
        (hopefully healthier) IO path.
        """
        if ids is None:
            self.reset()
            return
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        self._resident = np.setdiff1d(self._resident, ids,
                                      assume_unique=True)
        self._last_load_ids = np.empty(0, dtype=np.int64)

    def invalidate_pending(self) -> None:
        """Invalidate the rows the last :meth:`step` promised to load
        (the failed-transfer fast path: reused rows stay resident, the
        in-flight rows do not)."""
        self.invalidate(self._last_load_ids)

    def step(self, wanted: np.ndarray,
             sorted_wanted: np.ndarray | None = None) -> MatchResult:
        """Match ``wanted`` against the resident set, then make ``wanted``
        the new resident set (its features now occupy the device buffer).

        ``sorted_wanted``, when provided, must be ``np.sort(wanted)`` —
        callers holding a cached sorted view (e.g.
        ``SampledSubgraph.unique_input_nodes()``) pass it to skip the
        re-sort; the :class:`MatchResult` is still in ``wanted`` order.
        """
        wanted = np.asarray(wanted, dtype=np.int64)
        result = match_split(self._resident, wanted)
        if sorted_wanted is None:
            sorted_wanted = np.sort(wanted)
        self._resident = np.asarray(sorted_wanted, dtype=np.int64)
        self._last_load_ids = result.load_ids
        return result
