"""The Greedy Reorder strategy (paper Algorithm 1).

Given ``n`` pre-sampled mini-batches, compute the pairwise match-degree
matrix and chain batches greedily: start from batch 1, repeatedly append
the unvisited batch with the highest match degree to the last appended one.
Consecutive batches then overlap maximally, which the Match process turns
into saved PCIe traffic.

Note on fidelity: Algorithm 1 as printed sets ``h = argmax m_zk`` and later
``z = k`` — an obvious typo for ``z = h``; this implementation follows the
evident intent. An exhaustive-search oracle (:func:`optimal_reorder`) is
provided for tests to bound the greedy heuristic's suboptimality on small
windows.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.core.match import match_degree


def match_degree_matrix(node_sets) -> np.ndarray:
    """Pairwise match degrees of the given mini-batch node sets.

    ``node_sets`` is a sequence of node-ID arrays (one per mini-batch, as
    produced by sampling — ``SampledSubgraph.input_nodes``). The diagonal is
    zero so self-matches never win the argmax.
    """
    unique_sets = [np.unique(np.asarray(s, dtype=np.int64)) for s in node_sets]
    n = len(unique_sets)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        a = unique_sets[i]
        for j in range(i + 1, n):
            b = unique_sets[j]
            if len(a) == 0 or len(b) == 0:
                continue
            overlap = len(np.intersect1d(a, b, assume_unique=True))
            matrix[i, j] = matrix[j, i] = overlap / min(len(a), len(b))
    return matrix


def greedy_reorder(matrix: np.ndarray) -> list:
    """Algorithm 1: greedy max-match chaining starting from batch 0.

    Returns the batch indices in execution order. The first batch stays
    first (the paper anchors ``SubG_1``); each subsequent position holds
    the remaining batch with the highest match degree to its predecessor.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    if n == 0:
        return []
    work = matrix.copy()
    np.fill_diagonal(work, -np.inf)
    order = [0]
    work[:, 0] = -np.inf  # batch 0 is placed
    z = 0
    for _ in range(n - 1):
        h = int(np.argmax(work[z]))
        order.append(h)
        work[:, h] = -np.inf
        z = h
    return order


def chain_match_score(matrix: np.ndarray, order) -> float:
    """Sum of consecutive match degrees along ``order`` — the quantity the
    Reorder strategy maximizes (total feature reuse potential)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    order = list(order)
    return float(
        sum(matrix[order[i], order[i + 1]] for i in range(len(order) - 1))
    )


def optimal_reorder(matrix: np.ndarray, fix_first: bool = True) -> list:
    """Exhaustive-search best chain (test oracle; n <= 10).

    With ``fix_first`` the first batch is anchored like Algorithm 1 does.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if n > 10:
        raise ValueError("optimal_reorder is factorial; use n <= 10")
    if n == 0:
        return []
    candidates = (
        ([0] + list(rest) for rest in permutations(range(1, n)))
        if fix_first
        else permutations(range(n))
    )
    best_order: list = []
    best_score = -np.inf
    for cand in candidates:
        score = chain_match_score(matrix, cand)
        if score > best_score:
            best_score = score
            best_order = list(cand)
    return best_order
