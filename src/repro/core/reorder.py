"""The Greedy Reorder strategy (paper Algorithm 1).

Given ``n`` pre-sampled mini-batches, compute the pairwise match-degree
matrix and chain batches greedily: start from batch 1, repeatedly append
the unvisited batch with the highest match degree to the last appended one.
Consecutive batches then overlap maximally, which the Match process turns
into saved PCIe traffic.

The match-degree matrix is a training-loop hot path (it runs once per
reorder window, over every window of the epoch), so it is computed as a
single sparse membership-matrix product: one ``np.unique`` pass over all
batches' node IDs yields integer codes, the deduplicated ``(batch, code)``
pairs form a CSR incidence matrix ``M``, and ``M @ M.T`` counts every
pairwise overlap at once. :func:`match_degree_matrix_legacy` keeps the
original O(n^2) ``np.intersect1d`` loop as the reference implementation
(``python -m repro.bench`` times both and reports the speedup).

Note on fidelity: Algorithm 1 as printed sets ``h = argmax m_zk`` and later
``z = k`` — an obvious typo for ``z = h``; this implementation follows the
evident intent. An exhaustive-search oracle (:func:`optimal_reorder`) is
provided for tests to bound the greedy heuristic's suboptimality on small
windows.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.core.match import match_degree

try:  # scipy is a declared dependency; degrade to blocked-dense without it.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised only on scipy-less hosts
    _sparse = None

#: Code-axis chunk width of the dense fallback Gram product (bounds the
#: dense membership block at ``n_batches * _DENSE_CHUNK`` float32 cells).
_DENSE_CHUNK = 16384


def _overlap_scipy(batch: np.ndarray, values: np.ndarray, n: int,
                   assume_unique: bool) -> tuple:
    """``(overlap, sizes)`` via a sparse incidence Gram product.

    The {0,1} incidence CSR is assembled directly (the concatenation is
    already batch-major, so ``indptr`` falls out of a ``bincount``) rather
    than through scipy's COO->CSR conversion, whose per-row column sort is
    the expensive part. Per-batch deduplication, when needed, is a single
    composite-key sort over ``batch * width + id`` plus an adjacent-equal
    mask. The transpose is materialised explicitly with ``.T.tocsr()`` — a
    linear-time counting sort — so the Gram product runs as a native
    CSR x CSR ``csr_matmat`` with no hidden format conversion. Overlap
    counts are <= the batch size, exactly representable in float32, so the
    float64 cast is lossless.
    """
    low = values.min()
    if low:
        values = values - low
    width = int(values.max()) + 1
    if assume_unique:
        sizes = np.bincount(batch, minlength=n)
        indptr = np.concatenate(([0], np.cumsum(sizes)))
    else:
        codes = np.sort(batch * width + values)
        keep = np.empty(len(codes), dtype=bool)
        keep[0] = True
        np.not_equal(codes[1:], codes[:-1], out=keep[1:])
        codes = codes[keep]
        # Sorted composite codes put each batch in a contiguous run, so
        # row pointers are a searchsorted over the batch boundaries and
        # the column indices come back from one subtraction (no divmod).
        indptr = np.empty(n + 1, dtype=np.int64)
        indptr[0] = 0
        indptr[1:] = np.searchsorted(
            codes, np.arange(1, n + 1, dtype=np.int64) * width
        )
        sizes = np.diff(indptr)
        values = codes - np.repeat(
            np.arange(n, dtype=np.int64) * width, sizes
        )
    index_dtype = (np.int32
                   if max(width, len(values)) < np.iinfo(np.int32).max
                   else np.int64)
    indptr = indptr.astype(index_dtype, copy=False)
    incidence = _sparse.csr_matrix(
        (np.ones(len(values), dtype=np.float32),
         values.astype(index_dtype, copy=False),
         indptr),
        shape=(n, width),
    )
    overlap = np.asarray((incidence @ incidence.T.tocsr()).todense(),
                         dtype=np.float64)
    return overlap, sizes


def _overlap_numpy(batch: np.ndarray, values: np.ndarray, n: int,
                   assume_unique: bool) -> tuple:
    """``(overlap, sizes)`` without scipy: one stable sort by node ID
    orders equal IDs by batch (the concatenation is batch-ordered), so
    unique-ID codes and per-batch deduplication fall out of
    adjacent-difference passes; the Gram product runs over dense blocks
    of the code axis."""
    total = len(values)
    order = np.argsort(values, kind="stable")
    values = values[order]
    batch = batch[order]
    new_value = np.empty(total, dtype=bool)
    new_value[0] = True
    np.not_equal(values[1:], values[:-1], out=new_value[1:])
    codes = np.cumsum(new_value) - 1
    num_codes = int(codes[-1]) + 1
    if not assume_unique:
        keep = new_value.copy()
        keep[1:] |= batch[1:] != batch[:-1]
        batch = batch[keep]
        codes = codes[keep]
    sizes = np.bincount(batch, minlength=n)
    # IDs private to a single batch cannot contribute to any pairwise
    # overlap; dropping them shrinks the Gram product's work.
    code_counts = np.bincount(codes, minlength=num_codes)
    shared = code_counts[codes] > 1
    batch = batch[shared]
    codes = codes[shared]
    overlap = np.zeros((n, n), dtype=np.float64)
    for start in range(0, num_codes, _DENSE_CHUNK):
        stop = min(start + _DENSE_CHUNK, num_codes)
        in_chunk = (codes >= start) & (codes < stop)
        block = np.zeros((n, stop - start), dtype=np.float32)
        block[batch[in_chunk], codes[in_chunk] - start] = 1.0
        overlap += block @ block.T
    return overlap, sizes


def match_degree_matrix(node_sets, assume_unique: bool = False) -> np.ndarray:
    """Pairwise match degrees of the given mini-batch node sets.

    ``node_sets`` is a sequence of node-ID arrays (one per mini-batch, as
    produced by sampling — ``SampledSubgraph.input_nodes``). The diagonal is
    zero so self-matches never win the argmax.

    ``assume_unique`` skips the per-batch deduplication when every set is
    already duplicate-free (true for ID-map outputs; pass
    ``SampledSubgraph.unique_input_nodes()`` to reuse the cached unique
    pass). Entries are bit-identical to
    :func:`match_degree_matrix_legacy` — same integer overlap, same
    ``overlap / min(|a|, |b|)`` division.
    """
    arrays = [np.asarray(s, dtype=np.int64).ravel() for s in node_sets]
    n = len(arrays)
    matrix = np.zeros((n, n), dtype=np.float64)
    if n == 0:
        return matrix
    lengths = np.array([len(a) for a in arrays], dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return matrix
    values = np.concatenate(arrays)
    batch = np.repeat(np.arange(n, dtype=np.int64), lengths)
    if _sparse is not None:
        overlap, sizes = _overlap_scipy(batch, values, n, assume_unique)
    else:
        overlap, sizes = _overlap_numpy(batch, values, n, assume_unique)
    min_sizes = np.minimum(sizes[:, None], sizes[None, :])
    valid = min_sizes > 0
    np.divide(overlap, min_sizes, out=matrix, where=valid)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def match_degree_matrix_legacy(node_sets) -> np.ndarray:
    """Reference O(n^2) pairwise-``np.intersect1d`` implementation.

    Kept as the oracle for the vectorized fast path (property tests) and
    as the ``--legacy`` reference timing in ``python -m repro.bench``.
    """
    unique_sets = [np.unique(np.asarray(s, dtype=np.int64)) for s in node_sets]
    n = len(unique_sets)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        a = unique_sets[i]
        for j in range(i + 1, n):
            b = unique_sets[j]
            if len(a) == 0 or len(b) == 0:
                continue
            overlap = len(np.intersect1d(a, b, assume_unique=True))
            matrix[i, j] = matrix[j, i] = overlap / min(len(a), len(b))
    return matrix


def _as_match_matrix(matrix_or_node_sets, assume_unique: bool) -> np.ndarray:
    """Coerce :func:`greedy_reorder`'s input into a match-degree matrix.

    An ``np.ndarray`` keeps the historical contract: it must be a square
    2-D matrix of match degrees (anything else raises). A non-array
    sequence is a list of node sets when its elements are arrays (the
    sampling output shape), and otherwise falls back to the historical
    nested-list matrix form when square; ragged or non-square nested
    lists are node sets too.
    """
    x = matrix_or_node_sets
    if isinstance(x, np.ndarray):
        x = x.astype(np.float64, copy=False)
        if x.ndim != 2 or x.shape[0] != x.shape[1]:
            raise ValueError("matrix must be square")
        return x
    if any(isinstance(entry, np.ndarray) for entry in x):
        return match_degree_matrix(x, assume_unique=assume_unique)
    try:
        arr = np.asarray(x, dtype=np.float64)
    except (ValueError, TypeError):
        arr = None
    if arr is not None and arr.ndim == 2 and arr.shape[0] == arr.shape[1]:
        return arr
    return match_degree_matrix(x, assume_unique=assume_unique)


def greedy_reorder(matrix_or_node_sets, assume_unique: bool = False) -> list:
    """Algorithm 1: greedy max-match chaining starting from batch 0.

    Accepts either a precomputed match-degree matrix (square 2-D array)
    or the mini-batch node sets themselves, in which case the matrix is
    computed internally via the vectorized fast path
    (``assume_unique`` is forwarded to :func:`match_degree_matrix`).

    Returns the batch indices in execution order. The first batch stays
    first (the paper anchors ``SubG_1``); each subsequent position holds
    the remaining batch with the highest match degree to its predecessor.
    """
    matrix = _as_match_matrix(matrix_or_node_sets, assume_unique)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    if n == 0:
        return []
    work = matrix.copy()
    np.fill_diagonal(work, -np.inf)
    order = [0]
    work[:, 0] = -np.inf  # batch 0 is placed
    z = 0
    for _ in range(n - 1):
        h = int(np.argmax(work[z]))
        order.append(h)
        work[:, h] = -np.inf
        z = h
    return order


def chain_match_score(matrix: np.ndarray, order) -> float:
    """Sum of consecutive match degrees along ``order`` — the quantity the
    Reorder strategy maximizes (total feature reuse potential)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    order = list(order)
    return float(
        sum(matrix[order[i], order[i + 1]] for i in range(len(order) - 1))
    )


def optimal_reorder(matrix: np.ndarray, fix_first: bool = True) -> list:
    """Exhaustive-search best chain (test oracle; n <= 10).

    With ``fix_first`` the first batch is anchored like Algorithm 1 does.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if n > 10:
        raise ValueError("optimal_reorder is factorial; use n <= 10")
    if n == 0:
        return []
    candidates = (
        ([0] + list(rest) for rest in permutations(range(1, n)))
        if fix_first
        else permutations(range(n))
    )
    best_order: list = []
    best_score = -np.inf
    for cand in candidates:
        score = chain_match_score(matrix, cand)
        if score > best_score:
            best_score = score
            best_order = list(cand)
    return best_order
