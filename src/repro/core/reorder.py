"""The Greedy Reorder strategy (paper Algorithm 1).

Given ``n`` pre-sampled mini-batches, compute the pairwise match-degree
matrix and chain batches greedily: start from batch 1, repeatedly append
the unvisited batch with the highest match degree to the last appended one.
Consecutive batches then overlap maximally, which the Match process turns
into saved PCIe traffic.

The match-degree matrix is a training-loop hot path (it runs once per
reorder window, over every window of the epoch), so it is computed by
*pair counting* the sparse Gram product directly: one composite-key sort
groups every occurrence of a node ID into a contiguous run, and each run
of ``m`` owning batches contributes its ``C(m, 2)`` batch pairs to a
single flat ``bincount`` over the ``n * n`` overlap cells. That is
exactly the non-zero work a sparse ``M @ M.T`` incidence product would
do, without materialising the incidence matrix (or needing scipy).
:func:`match_degree_matrix_legacy` keeps the original O(n^2)
``np.intersect1d`` loop as the reference implementation
(``python -m repro.bench`` times both and reports the speedup).

The greedy chain itself walks precomputed blocked top-k candidate lists
(each batch's ``k`` best match partners, sorted by descending degree
then ascending index) and falls back to a full row scan only when a
block is exhausted or the winner is ambiguous at the block boundary, so
the common step is O(k) instead of O(n). The order is bit-identical to
the kept :func:`greedy_reorder_legacy` argmax sweep, including ties:
**the lowest batch index wins every tie**, exactly like ``np.argmax``.

Note on fidelity: Algorithm 1 as printed sets ``h = argmax m_zk`` and later
``z = k`` — an obvious typo for ``z = h``; this implementation follows the
evident intent. An exhaustive-search oracle (:func:`optimal_reorder`) is
provided for tests to bound the greedy heuristic's suboptimality on small
windows.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

#: Default candidate-block width of the blocked top-k greedy chain.
#: Each batch precomputes this many best match partners; a step only
#: falls back to a full row scan when its block is exhausted.
_TOPK_BLOCK = 32


def _overlap_paircount(batch: np.ndarray, values: np.ndarray, n: int,
                       assume_unique: bool) -> tuple:
    """``(overlap, sizes)`` by pair-counting the sparse Gram product.

    One sort of the composite key ``id * p + batch`` (``p`` the next
    power of two >= ``n``, so the split back into ``(id, batch)`` is a
    shift and a mask) groups all owners of each node ID contiguously,
    in ascending batch order; adjacent-equal masking deduplicates
    repeated IDs within a batch. Runs are then bucketed by multiplicity
    ``m`` so the ``C(m, 2)`` ordered owner pairs of every run in a
    bucket come from one fixed-width gather + ``np.triu_indices``
    expansion, and a single ``bincount`` over ``a * n + b`` keys
    accumulates the upper-triangle overlap counts. The composite key is
    built in int32 when the ID width allows (roughly halves the sort
    cost at the bench sizes); IDs too wide even for int64 composites
    take a ``np.lexsort`` detour. Overlap counts are integers, so the
    float64 cast is lossless.
    """
    low = values.min()
    if low:
        values = values - low
    width = int(values.max()) + 1
    p = 1 << max(1, (n - 1).bit_length())
    shift = p.bit_length() - 1
    if width <= (2 ** 31 - 1) // p:
        codes = (values.astype(np.int32) << shift) + batch.astype(np.int32)
    elif width <= (2 ** 63 - 1) // p:
        codes = (values << shift) + batch
    else:  # composite key would overflow int64: sort the pair directly
        codes = None
    if codes is not None:
        codes = np.sort(codes)
        if not assume_unique:
            keep = np.empty(len(codes), dtype=bool)
            keep[0] = True
            np.not_equal(codes[1:], codes[:-1], out=keep[1:])
            codes = codes[keep]
        owners = (codes & (p - 1)).astype(np.int64)
        ids = codes >> shift
    else:
        order = np.lexsort((batch, values))
        ids = values[order]
        owners = batch[order]
        if not assume_unique:
            keep = np.empty(len(ids), dtype=bool)
            keep[0] = True
            keep[1:] = (ids[1:] != ids[:-1]) | (owners[1:] != owners[:-1])
            ids = ids[keep]
            owners = owners[keep]
    sizes = np.bincount(owners, minlength=n)
    new_run = np.empty(len(ids), dtype=bool)
    new_run[0] = True
    np.not_equal(ids[1:], ids[:-1], out=new_run[1:])
    starts = np.flatnonzero(new_run)
    run_len = np.diff(np.append(starts, len(ids)))
    key_blocks = []
    for m in np.unique(run_len):
        m = int(m)
        if m < 2:  # IDs private to one batch contribute no pair
            continue
        sel = starts[run_len == m]
        block = owners[sel[:, None] + np.arange(m)]
        a, b = np.triu_indices(m, 1)
        # Owners ascend within a run, so every key lands in the upper
        # triangle; symmetrising at the end restores the full matrix.
        key_blocks.append((block[:, a] * n + block[:, b]).ravel())
    overlap = np.zeros((n, n), dtype=np.float64)
    if key_blocks:
        flat = np.bincount(np.concatenate(key_blocks), minlength=n * n)
        overlap += flat.reshape(n, n)
        overlap += overlap.T
    return overlap, sizes


def match_degree_matrix(node_sets, assume_unique: bool = False) -> np.ndarray:
    """Pairwise match degrees of the given mini-batch node sets.

    ``node_sets`` is a sequence of node-ID arrays (one per mini-batch, as
    produced by sampling — ``SampledSubgraph.input_nodes``). The diagonal is
    zero so self-matches never win the argmax.

    ``assume_unique`` skips the per-batch deduplication when every set is
    already duplicate-free (true for ID-map outputs; pass
    ``SampledSubgraph.unique_input_nodes()`` to reuse the cached unique
    pass). Entries are bit-identical to
    :func:`match_degree_matrix_legacy` — same integer overlap, same
    ``overlap / min(|a|, |b|)`` division.
    """
    arrays = [np.asarray(s, dtype=np.int64).ravel() for s in node_sets]
    n = len(arrays)
    matrix = np.zeros((n, n), dtype=np.float64)
    if n == 0:
        return matrix
    lengths = np.array([len(a) for a in arrays], dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return matrix
    values = np.concatenate(arrays)
    batch = np.repeat(np.arange(n, dtype=np.int64), lengths)
    overlap, sizes = _overlap_paircount(batch, values, n, assume_unique)
    min_sizes = np.minimum(sizes[:, None], sizes[None, :])
    valid = min_sizes > 0
    np.divide(overlap, min_sizes, out=matrix, where=valid)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def match_degree_matrix_legacy(node_sets) -> np.ndarray:
    """Reference O(n^2) pairwise-``np.intersect1d`` implementation.

    Kept as the oracle for the vectorized fast path (property tests) and
    as the ``--legacy`` reference timing in ``python -m repro.bench``.
    """
    unique_sets = [np.unique(np.asarray(s, dtype=np.int64)) for s in node_sets]
    n = len(unique_sets)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        a = unique_sets[i]
        for j in range(i + 1, n):
            b = unique_sets[j]
            if len(a) == 0 or len(b) == 0:
                continue
            overlap = len(np.intersect1d(a, b, assume_unique=True))
            matrix[i, j] = matrix[j, i] = overlap / min(len(a), len(b))
    return matrix


def _as_match_matrix(matrix_or_node_sets, assume_unique: bool) -> np.ndarray:
    """Coerce :func:`greedy_reorder`'s input into a match-degree matrix.

    An ``np.ndarray`` keeps the historical contract: it must be a square
    2-D matrix of match degrees (anything else raises). A non-array
    sequence is a list of node sets when its elements are arrays (the
    sampling output shape), and otherwise falls back to the historical
    nested-list matrix form when square; ragged or non-square nested
    lists are node sets too.
    """
    x = matrix_or_node_sets
    if isinstance(x, np.ndarray):
        x = x.astype(np.float64, copy=False)
        if x.ndim != 2 or x.shape[0] != x.shape[1]:
            raise ValueError("matrix must be square")
        return x
    if any(isinstance(entry, np.ndarray) for entry in x):
        return match_degree_matrix(x, assume_unique=assume_unique)
    try:
        arr = np.asarray(x, dtype=np.float64)
    except (ValueError, TypeError):
        arr = None
    if arr is not None and arr.ndim == 2 and arr.shape[0] == arr.shape[1]:
        return arr
    return match_degree_matrix(x, assume_unique=assume_unique)


def _chain_blocked(matrix: np.ndarray, block: int) -> list:
    """Greedy max-match chain over blocked top-k candidate lists.

    Per row, the ``k + 1`` largest entries (one slot of slack because the
    zero diagonal may occupy one) are precomputed and sorted by
    ``(degree desc, index asc)`` — the same total order ``np.argmax``
    induces, so ties resolve to the lowest index. A step scans its row's
    block for the first unvisited candidate; that candidate is provably
    the argmax whenever its degree strictly exceeds the block's boundary
    value (every out-of-block entry is <= the boundary). On boundary
    ambiguity or an exhausted block, the step falls back to an exact
    full-row scan identical to the legacy sweep. Order is therefore
    bit-identical to :func:`greedy_reorder_legacy` for every input,
    which the property suite pins.
    """
    n = matrix.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [0]
    take = min(n, block + 1)
    if take >= n:
        cand = np.argsort(-matrix, axis=1, kind="stable")
        boundary = np.full(n, -np.inf)
        vals = np.take_along_axis(matrix, cand, axis=1)
    else:
        cand = np.argpartition(matrix, n - take, axis=1)[:, n - take:]
        vals = np.take_along_axis(matrix, cand, axis=1)
        by_index = np.argsort(cand, axis=1)
        cand = np.take_along_axis(cand, by_index, axis=1)
        vals = np.take_along_axis(vals, by_index, axis=1)
        by_value = np.argsort(-vals, axis=1, kind="stable")
        cand = np.take_along_axis(cand, by_value, axis=1)
        vals = np.take_along_axis(vals, by_value, axis=1)
        boundary = vals[:, -1]
    cand_rows = cand.tolist()
    val_rows = vals.tolist()
    bound = boundary.tolist()
    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    order = [0]
    z = 0
    for _ in range(n - 1):
        h = -1
        row_c = cand_rows[z]
        row_v = val_rows[z]
        limit = bound[z]
        for position, candidate in enumerate(row_c):
            if visited[candidate]:
                continue
            if row_v[position] > limit:
                h = candidate
            break
        if h < 0:
            masked = matrix[z].copy()
            masked[visited] = -np.inf
            masked[z] = -np.inf
            h = int(np.argmax(masked))
        order.append(h)
        visited[h] = True
        z = h
    return order


def greedy_reorder(matrix_or_node_sets, assume_unique: bool = False,
                   block: int | None = None) -> list:
    """Algorithm 1: greedy max-match chaining starting from batch 0.

    Accepts either a precomputed match-degree matrix (square 2-D array)
    or the mini-batch node sets themselves, in which case the matrix is
    computed internally via the pair-counting fast path
    (``assume_unique`` is forwarded to :func:`match_degree_matrix`).

    Returns the batch indices in execution order. The first batch stays
    first (the paper anchors ``SubG_1``); each subsequent position holds
    the remaining batch with the highest match degree to its predecessor.
    **Tie-breaking is pinned: the lowest batch index wins**, matching
    ``np.argmax``'s first-maximum rule, so the order is bit-identical to
    :func:`greedy_reorder_legacy` (the kept reference sweep). ``block``
    overrides the top-k candidate width (default ``min(n - 1, 32)``); it
    is a throughput knob only and never changes the order.
    """
    matrix = _as_match_matrix(matrix_or_node_sets, assume_unique)
    return _chain_blocked(matrix, block if block else _TOPK_BLOCK)


def greedy_reorder_legacy(matrix_or_node_sets,
                          assume_unique: bool = False) -> list:
    """Kept reference chain: the O(n^2) full-matrix argmax sweep.

    Node-set inputs go through :func:`match_degree_matrix_legacy` so the
    whole path is the paper-faithful pairwise formulation — this is the
    reference timing behind ``reorder_blocked`` in ``python -m
    repro.bench`` and the oracle the blocked chain is pinned against.
    Ties resolve to the lowest index (``np.argmax`` scans forward).
    """
    x = matrix_or_node_sets
    if not isinstance(x, np.ndarray) and any(
            isinstance(entry, np.ndarray) for entry in x):
        matrix = match_degree_matrix_legacy(x)
    else:
        matrix = _as_match_matrix(x, assume_unique)
    n = matrix.shape[0]
    if n == 0:
        return []
    work = matrix.copy()
    np.fill_diagonal(work, -np.inf)
    order = [0]
    work[:, 0] = -np.inf  # batch 0 is placed
    z = 0
    for _ in range(n - 1):
        h = int(np.argmax(work[z]))
        order.append(h)
        work[:, h] = -np.inf
        z = h
    return order


def chain_match_score(matrix: np.ndarray, order) -> float:
    """Sum of consecutive match degrees along ``order`` — the quantity the
    Reorder strategy maximizes (total feature reuse potential). Computed
    as one fancy-indexed pair gather instead of a Python loop."""
    matrix = np.asarray(matrix, dtype=np.float64)
    index = np.asarray(list(order), dtype=np.intp)
    if index.size < 2:
        return 0.0
    return float(matrix[index[:-1], index[1:]].sum())


def optimal_reorder(matrix: np.ndarray, fix_first: bool = True) -> list:
    """Exhaustive-search best chain (test oracle; n <= 10).

    With ``fix_first`` the first batch is anchored like Algorithm 1 does.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if n > 10:
        raise ValueError("optimal_reorder is factorial; use n <= 10")
    if n == 0:
        return []
    candidates = (
        ([0] + list(rest) for rest in permutations(range(1, n)))
        if fix_first
        else permutations(range(n))
    )
    best_order: list = []
    best_score = -np.inf
    for cand in candidates:
        score = chain_match_score(matrix, cand)
        if score > best_score:
            best_score = score
            best_order = list(cand)
    return best_order
