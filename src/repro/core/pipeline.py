"""The FastGL training pipeline (the paper's Fig. 5), as a library API.

:class:`FastGLTrainer` is the user-facing orchestration: per window of
``n`` mini-batches it (1) samples with the Fused-Map sampler, (2) greedily
reorders the window, then (3) trains batch by batch, loading features
through the Match process (plus the Section-5 leftover-memory cache) and
running the real numpy model whose aggregation the Memory-Aware cost model
prices. It owns a persistent model/optimizer, so it is the right entry
point for an application that wants a *trained model* rather than an
epoch-time report (use :class:`repro.frameworks.FastGLFramework` for
that).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import RunConfig
from repro.core.memory_aware import ComputeCostModel, model_profile
from repro.core.reorder import greedy_reorder, match_degree_matrix
from repro.gpu.pcie import link_from_cost
from repro.gpu.spec import GPUSpec, RTX3090
from repro.graph.datasets import Dataset
from repro.graph.partition import MinibatchPlan
from repro.nn import Adam, Tensor, build_model, cross_entropy, no_grad
from repro.sampling import FusedIdMap, NeighborSampler
from repro.transfer.buffer import ResidentFeatureBuffer
from repro.transfer.cache import PresampleCachePolicy
from repro.transfer.loader import MatchLoader
from repro.utils.rng import RngFactory


@dataclass
class TrainHistory:
    """What one :meth:`FastGLTrainer.train` call produced."""

    losses: list = field(default_factory=list)
    #: Modeled GPU seconds per phase, accumulated.
    sample_time: float = 0.0
    memory_io_time: float = 0.0
    compute_time: float = 0.0
    num_batches: int = 0
    rows_loaded: int = 0
    rows_reused: int = 0
    #: Validation accuracy after each epoch (when requested).
    val_accuracies: list = field(default_factory=list)

    @property
    def modeled_time(self) -> float:
        return self.sample_time + self.memory_io_time + self.compute_time

    def epoch_mean_losses(self, num_epochs: int) -> list:
        """Mean loss per epoch (for convergence plots)."""
        if num_epochs <= 0 or not self.losses:
            return []
        per_epoch = max(1, len(self.losses) // num_epochs)
        return [
            float(np.mean(self.losses[i:i + per_epoch]))
            for i in range(0, len(self.losses), per_epoch)
        ]


class FastGLTrainer:
    """End-to-end FastGL training over one dataset.

    Parameters mirror the paper's setup; the trainer keeps its model and
    optimizer across :meth:`train` calls so training can be resumed.
    """

    def __init__(
        self,
        dataset: Dataset,
        model_name: str = "gcn",
        config: RunConfig | None = None,
        spec: GPUSpec = RTX3090,
        learning_rate: float = 3e-3,
    ) -> None:
        self.dataset = dataset
        self.config = config or RunConfig()
        self.spec = spec
        self.model_name = model_name
        rngs = RngFactory(self.config.seed)
        self._rngs = rngs

        self.sampler = NeighborSampler(
            dataset.graph,
            self.config.fanouts,
            idmap=FusedIdMap(),
            rng=rngs.child("trainer-sampler"),
        )
        cache = None
        budget = dataset.cache_budget_bytes()
        if budget > 0:
            cache = PresampleCachePolicy.build(
                self.sampler, dataset.train_ids, dataset.features, budget,
                batch_size=min(self.config.batch_size,
                               len(dataset.train_ids)),
                rng=rngs.child("trainer-cache"),
            )
        self.loader = MatchLoader(dataset.features, cache=cache)
        # Functional counterpart of the Match byte accounting: the actual
        # feature rows are assembled from the resident device buffer plus
        # host fetches of the difference set (bit-identical to a direct
        # gather — tests/test_buffer_autotune.py proves it).
        self._buffer = ResidentFeatureBuffer(dataset.features)
        self.model = build_model(
            model_name, dataset.feature_dim, dataset.num_classes,
            hidden_dim=self.config.hidden_dim,
            num_layers=self.config.num_layers,
            seed=rngs.child_seed("trainer-model"),
        )
        self.optimizer = Adam(self.model.parameters(), lr=learning_rate)
        self._cost_model = ComputeCostModel(spec, self.config.cost,
                                            "memory_aware")
        self._profile = model_profile(
            model_name, dataset.feature_dim, dataset.num_classes,
            hidden_dim=self.config.hidden_dim,
            num_layers=self.config.num_layers,
        )
        self._link = link_from_cost(spec, self.config.cost)
        self._epochs_done = 0

    # -- training -----------------------------------------------------------
    def train(self, num_epochs: int = 1,
              validate: bool = False,
              val_batch: int = 512) -> TrainHistory:
        """Run ``num_epochs`` of Fig.-5 training; returns the history.

        With ``validate``, the model is evaluated on (a slice of) the
        dataset's validation split after every epoch.
        """
        if num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        history = TrainHistory()
        plan = MinibatchPlan(self.dataset.train_ids, self.config.batch_size,
                             locality=self.config.batch_locality)
        for _ in range(num_epochs):
            epoch_rng = self._rngs.child(f"trainer-epoch{self._epochs_done}")
            batches = plan.batches(epoch_rng)
            self.loader.reset_epoch()
            self._buffer.reset()
            window = max(2, self.config.reorder_window)
            for start in range(0, len(batches), window):
                group = batches[start:start + window]
                self._train_window(group, history)
            self._epochs_done += 1
            if validate and len(self.dataset.val_ids):
                history.val_accuracies.append(
                    self.evaluate(self.dataset.val_ids[:val_batch])
                )
        return history

    def _train_window(self, batches: list, history: TrainHistory) -> None:
        # (1) Map-Fused Sampler samples the n mini-batches of the window.
        subgraphs = [self.sampler.sample(batch) for batch in batches]
        for sg in subgraphs:
            history.sample_time += self.sampler.modeled_total_sample_time(
                sg, self.config.cost
            )
        # (2) Greedy Reorder permutes the window.
        order = list(range(len(subgraphs)))
        if len(subgraphs) > 2:
            matrix = match_degree_matrix(
                [sg.unique_input_nodes() for sg in subgraphs],
                assume_unique=True,
            )
            order = greedy_reorder(matrix)
        # (3) Match-load + Memory-Aware compute, batch by batch.
        for index in order:
            subgraph = subgraphs[index]
            seeds = batches[index]
            report = self.loader.plan(subgraph)
            history.memory_io_time += report.modeled_time(
                self._link, self.config.cost
            )
            history.rows_loaded += report.num_loaded
            history.rows_reused += report.num_reused

            features = Tensor(self._buffer.fetch(subgraph.input_nodes))
            logits = self.model(subgraph, features)
            loss = cross_entropy(logits, self.dataset.labels[seeds])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            history.losses.append(float(loss.data))
            history.num_batches += 1
            history.compute_time += self._cost_model.subgraph_report(
                subgraph, self._profile
            ).total_time

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, seeds: np.ndarray) -> float:
        """Accuracy of the current model on ``seeds`` (sampled inference)."""
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        subgraph = self.sampler.sample(seeds)
        with no_grad():
            features = Tensor(
                self.dataset.features.gather(subgraph.input_nodes)
            )
            logits = self.model(subgraph, features)
        predictions = logits.data.argmax(axis=1)
        return float((predictions == self.dataset.labels[seeds]).mean())
