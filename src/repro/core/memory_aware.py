"""Memory-Aware computation (paper Section 4.2).

The aggregation of Eq. 1 reads three streams per target node ``u``:

* source features ``x_v`` — read once each,
* edge weights ``w_uv`` — read ``d`` times each,
* partial sums ``h_u`` — read ``|N(u)| - 1`` times.

Naive kernels pull everything through the (thrashing) L1/L2 path from
global memory — Eq. 3. The Memory-Aware kernel stages the two hot streams
(partial sums, weights) in shared memory — Eq. 4 — cutting the bytes that
touch global memory roughly 3x. This module implements both equations as a
cost model, the thread-block planning constraint (X*Y <= 1024,
``4XY + 4X|N(u)|`` shared bytes), and the paper-named ``A3`` aggregation
API that couples the functional numpy kernel with the modeled cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CostModelConfig, DEFAULT_COST_MODEL
from repro.errors import ConfigError
from repro.gpu.kernels import ThreadBlockConfig, aggregation_kernel_plan, gemm_time
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.spec import GPUSpec, RTX3090
from repro.nn.functional import a3_aggregate
from repro.sampling.subgraph import LayerBlock, SampledSubgraph

#: Cost-model modes, one per compared framework family.
MODES = ("naive", "memory_aware", "advisor")


@dataclass
class AggregationCost:
    """Modeled cost of one aggregation kernel (one direction)."""

    mem_time: float
    flop_time: float
    flops: float
    bytes_shared: float
    bytes_global: float
    #: Bytes actually served by DRAM (global requests minus cache hits) —
    #: the denominator of the roofline's operational intensity.
    dram_bytes: float = 0.0

    @property
    def time(self) -> float:
        """Roofline-style: the kernel is bound by the slower of the two."""
        return max(self.mem_time, self.flop_time)

    @property
    def achieved_flops(self) -> float:
        if self.time == 0:
            return 0.0
        return self.flops / self.time

    @property
    def operational_intensity(self) -> float:
        total_bytes = self.bytes_shared + self.bytes_global
        if total_bytes == 0:
            return 0.0
        return self.flops / total_bytes


@dataclass
class ComputeReport:
    """Accumulated computation-phase cost over blocks/batches."""

    agg_time: float = 0.0
    gemm_time: float = 0.0
    preprocess_time: float = 0.0
    overhead_time: float = 0.0
    flops: float = 0.0
    agg_flops: float = 0.0
    agg_bytes: float = 0.0
    agg_dram_bytes: float = 0.0
    agg_mem_time: float = 0.0

    @property
    def total_time(self) -> float:
        return (self.agg_time + self.gemm_time + self.preprocess_time
                + self.overhead_time)

    def merge(self, other: "ComputeReport") -> "ComputeReport":
        self.agg_time += other.agg_time
        self.gemm_time += other.gemm_time
        self.preprocess_time += other.preprocess_time
        self.overhead_time += other.overhead_time
        self.flops += other.flops
        self.agg_flops += other.agg_flops
        self.agg_bytes += other.agg_bytes
        self.agg_dram_bytes += other.agg_dram_bytes
        self.agg_mem_time += other.agg_mem_time
        return self


@dataclass(frozen=True)
class ModelProfile:
    """Compute shape of one GNN model, as the cost model sees it."""

    name: str
    #: (d_in, d_out) of each layer, input-side first.
    layer_dims: tuple
    #: Dense GEMMs per layer (GIN's MLP update has 2).
    gemms_per_layer: int = 1
    #: Attention heads (> 0 adds per-edge score/softmax work, GAT).
    attention_heads: int = 0
    #: GAT transforms *source* features before aggregating.
    gemm_on_src: bool = False


def model_profile(
    name: str,
    in_dim: int,
    out_dim: int,
    hidden_dim: int = 64,
    num_layers: int = 3,
) -> ModelProfile:
    """Profile for the paper's models ('gcn', 'gin', 'gat')."""
    name = name.lower()
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    layer_dims = tuple((dims[i], dims[i + 1]) for i in range(num_layers))
    if name == "gcn":
        return ModelProfile(name, layer_dims)
    if name == "gin":
        return ModelProfile(name, layer_dims, gemms_per_layer=2)
    if name == "gat":
        return ModelProfile(name, layer_dims, attention_heads=8,
                            gemm_on_src=True)
    raise ConfigError(f"unknown model {name!r}")


class ComputeCostModel:
    """Converts a sampled subgraph + model profile into modeled seconds.

    ``mode`` selects the access-pattern model:

    * ``"naive"`` — Eq. 3; everything streams through the thrashing cache
      path (DGL / PyG).
    * ``"memory_aware"`` — Eq. 4; hot streams in shared memory (FastGL).
    * ``"advisor"`` — naive bandwidth boosted by 2D workload management,
      plus per-subgraph preprocessing time (GNNAdvisor).
    """

    def __init__(
        self,
        spec: GPUSpec = RTX3090,
        cost: CostModelConfig = DEFAULT_COST_MODEL,
        mode: str = "memory_aware",
        tb_config: ThreadBlockConfig = ThreadBlockConfig(),
    ) -> None:
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}")
        self.spec = spec
        self.cost = cost
        self.mode = mode
        self.tb_config = tb_config
        self._hier = MemoryHierarchy(spec)
        self._naive_bw = self._hier.effective_bandwidth(
            cost.naive_l1_hit, cost.naive_l2_hit
        )

    # -- single aggregation ---------------------------------------------------
    def aggregation_cost(self, num_dst: int, num_edges: int,
                         feature_dim: int) -> AggregationCost:
        """Cost of one aggregation pass (Eq. 3 or Eq. 4, summed over
        targets). Holds for forward and backward alike — Eq. 5 has the same
        access structure transposed."""
        e, dst, d = float(num_edges), float(num_dst), float(feature_dim)
        flops = 2.0 * e * d  # one FMA per edge per dimension
        flop_time = flops / self.spec.peak_flops
        if self.mode == "memory_aware":
            plan = aggregation_kernel_plan(
                num_dst, feature_dim, avg_degree=max(1.0, e / max(dst, 1.0)),
                spec=self.spec, config=self.tb_config,
            )
            # Partial sums: 4(|N|-1)d; weights: 4|N|(d-1) — both shared.
            bytes_shared = 4.0 * d * max(0.0, e - dst) + 4.0 * (d - 1.0) * e
            # Source features 4|N|d and first-touch weights 4|N| — global.
            bytes_global = 4.0 * d * e + 4.0 * e
            shared_bw = self.spec.shared_bw * max(0.25, plan.occupancy)
            mem_time = (bytes_shared / shared_bw
                        + bytes_global / self.spec.global_bw)
            dram_bytes = bytes_global
        else:
            bytes_shared = 0.0
            bytes_global = 4.0 * d * max(0.0, 3.0 * e - dst)
            bandwidth = self._naive_bw
            miss_to_dram = ((1.0 - self.cost.naive_l1_hit)
                            * (1.0 - self.cost.naive_l2_hit))
            dram_bytes = bytes_global * miss_to_dram
            if self.mode == "advisor":
                bandwidth *= self.cost.advisor_bandwidth_gain
                dram_bytes /= self.cost.advisor_bandwidth_gain
            mem_time = bytes_global / bandwidth
        return AggregationCost(
            mem_time=mem_time,
            flop_time=flop_time,
            flops=flops,
            bytes_shared=bytes_shared,
            bytes_global=bytes_global,
            dram_bytes=dram_bytes,
        )

    # -- one layer --------------------------------------------------------------
    def layer_report(
        self,
        block: LayerBlock,
        d_in: int,
        d_out: int,
        profile: ModelProfile,
        include_backward: bool = True,
    ) -> ComputeReport:
        report = ComputeReport()
        directions = 2 if include_backward else 1
        agg_dim = d_out if profile.gemm_on_src else d_in
        agg = self.aggregation_cost(block.num_dst, block.num_edges, agg_dim)
        report.agg_time += agg.time * directions
        report.agg_mem_time += agg.mem_time * directions
        report.agg_flops += agg.flops * directions
        report.agg_bytes += (agg.bytes_shared + agg.bytes_global) * directions
        report.agg_dram_bytes += agg.dram_bytes * directions
        report.flops += agg.flops * directions

        gemm_rows = block.num_src if profile.gemm_on_src else block.num_dst
        one_gemm = gemm_time(gemm_rows, d_out, d_in, self.spec,
                             self.cost.gemm_efficiency)
        # Backward needs dX and dW — two extra GEMMs of the same shape.
        gemm_count = profile.gemms_per_layer * (3 if include_backward else 1)
        report.gemm_time += one_gemm * gemm_count
        report.flops += 2.0 * gemm_rows * d_in * d_out * gemm_count

        if profile.attention_heads:
            # Per-edge score + softmax work per head, fwd (+bwd).
            heads = profile.attention_heads
            extra_bytes = 4.0 * block.num_edges * heads * 6.0 * directions
            extra_flops = 10.0 * block.num_edges * heads * directions
            report.agg_time += extra_bytes / self.spec.global_bw
            report.agg_mem_time += extra_bytes / self.spec.global_bw
            report.flops += extra_flops
        report.overhead_time += self.cost.layer_overhead_s * directions
        return report

    # -- full subgraph -----------------------------------------------------------
    def subgraph_report(
        self,
        subgraph: SampledSubgraph,
        profile: ModelProfile,
        include_backward: bool = True,
    ) -> ComputeReport:
        """Modeled compute cost of one training iteration on ``subgraph``."""
        if len(profile.layer_dims) != subgraph.num_layers:
            raise ConfigError(
                f"profile has {len(profile.layer_dims)} layers, subgraph "
                f"{subgraph.num_layers}"
            )
        report = ComputeReport()
        # Deepest block feeds the first layer.
        for (d_in, d_out), block in zip(
            profile.layer_dims, reversed(subgraph.layers)
        ):
            report.merge(
                self.layer_report(block, d_in, d_out, profile,
                                  include_backward)
            )
        if self.mode == "advisor":
            elems = subgraph.num_nodes + subgraph.num_edges
            report.preprocess_time += (
                elems * self.cost.advisor_preprocess_s_per_elem
            )
        return report


class A3:
    """The paper's user-facing aggregation API (``A3.forward`` /
    ``A3.backward``), pairing the functional kernel with its modeled cost.

    ``forward`` runs the real numpy aggregation (autograd-recorded, so
    calling ``backward()`` on a downstream loss executes Eq. 5) and returns
    the output tensor; ``last_cost`` exposes the modeled kernel cost of the
    most recent call.
    """

    def __init__(self, cost_model: ComputeCostModel | None = None) -> None:
        self.cost_model = cost_model or ComputeCostModel()
        self.last_cost: AggregationCost | None = None

    def forward(self, x_src, edge_src, edge_dst, weight, num_dst: int):
        out = a3_aggregate(x_src, edge_src, edge_dst, weight, num_dst)
        self.last_cost = self.cost_model.aggregation_cost(
            num_dst, len(np.asarray(edge_src)), x_src.shape[1]
        )
        return out

    @staticmethod
    def backward(loss) -> None:
        """Run the recorded backward pass (Eq. 5 included) from ``loss``."""
        loss.backward()
