"""FastGL's three techniques (the paper's Section 4).

* :mod:`repro.core.match` — the **Match** process: reuse feature rows
  already resident from the previous mini-batch; load only the set
  difference.
* :mod:`repro.core.reorder` — the **Greedy Reorder** strategy
  (Algorithm 1): permute a window of sampled mini-batches so consecutive
  batches overlap maximally.
* :mod:`repro.core.memory_aware` — the **Memory-Aware** computation:
  Eqs. 3-4 access-time model, thread-block planning, and the ``A3``
  aggregation API.
* Fused-Map sampling lives in :mod:`repro.sampling.idmap.fused`;
  :mod:`repro.core.fused_map` re-exports it as part of the contribution
  surface.
* :mod:`repro.core.pipeline` — the FastGL training pipeline tying all
  three together (the paper's Fig. 5).
"""

from repro.core.match import MatchResult, MatchState, match_degree, match_split
from repro.core.reorder import (
    chain_match_score,
    greedy_reorder,
    match_degree_matrix,
    optimal_reorder,
)
from repro.core.memory_aware import (
    A3,
    AggregationCost,
    ComputeCostModel,
    ComputeReport,
)
from repro.core.fused_map import FusedIdMap, simulate_concurrent_fused_map
from repro.core.pipeline import FastGLTrainer, TrainHistory

__all__ = [
    "FastGLTrainer",
    "TrainHistory",
    "MatchResult",
    "MatchState",
    "match_degree",
    "match_split",
    "chain_match_score",
    "greedy_reorder",
    "match_degree_matrix",
    "optimal_reorder",
    "A3",
    "AggregationCost",
    "ComputeCostModel",
    "ComputeReport",
    "FusedIdMap",
    "simulate_concurrent_fused_map",
]
