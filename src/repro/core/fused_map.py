"""Fused-Map sampling — contribution-surface re-export.

The implementation lives with the other ID maps in
:mod:`repro.sampling.idmap.fused`; this module re-exports it so the paper's
three techniques are all reachable under :mod:`repro.core`.
"""

from repro.sampling.idmap.fused import FusedIdMap, simulate_concurrent_fused_map

__all__ = ["FusedIdMap", "simulate_concurrent_fused_map"]
