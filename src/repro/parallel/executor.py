"""Fork-based process-pool executor with deterministic semantics.

The engine behind ``--jobs N``: it shards a list of independent tasks
(experiment figures, per-trainer epoch lanes, serving sweep points)
across worker processes while keeping every observable output —
results, per-task random streams, merged metrics — **independent of the
job count**. ``jobs=4`` must be a pure wall-clock optimization; the
determinism tests in ``tests/test_parallel.py`` hold it to that.

How jobs-independence is achieved:

* **Per-task seeding.** Each task's RNG derives from
  ``(seed, task_index)`` via :func:`task_rng`, never from the worker
  that happens to run it.
* **Inherited closures, queued indices.** Workers are forked, so the
  function and items are inherited memory — only *chunk indices* go to
  workers and only results come back. This lets callers pass closures
  over datasets without pickling either.
* **Ordered metric folding.** Every chunk — serial or parallel — runs
  against a fresh worker-side :class:`~repro.obs.registry.MetricsRegistry`
  whose snapshot the parent merges *in chunk order* after all chunks
  finish. The serial fallback runs the exact same fresh-registry
  chunk protocol, so ``jobs=1`` and ``jobs=N`` fold identical
  floating-point sums in identical order.

Result transport is zero-copy by default: the parent maps a
:class:`~repro.parallel.shm.SharedArena` before forking and gives every
worker slot a private slab; workers move large result ndarrays into
their slab and send only ``(offset, shape, dtype)`` descriptors — plus
tiny control tuples — through the crash-safe pipes. The parent copies
arrays out of the arena the moment a result is received (before the
worker can be handed its next chunk), so slab reuse can never alias a
returned result and the transport stays bit-identical to plain pickled
pipes and to the serial path. ``REPRO_PARALLEL_ARENA=0`` (or
``use_arena=False``) restores the pure-pipe transport. Either way the
parent counts every byte: ``repro_parallel_ipc_bytes_total`` (pipe
traffic, including spilled arrays and metric snapshots) and
``repro_parallel_shm_bytes_total`` (bytes that moved via the arena
instead), also exposed per-map on :attr:`ParallelExecutor.last_transport`.
These transport counters are the one deliberate exception to the
jobs-determinism contract — they measure the transport itself, so they
are zero under the serial fallback; comparisons across job counts strip
them with :func:`strip_transport_metrics`.

The serial fallback engages when ``jobs <= 1``, when the platform lacks
the ``fork`` start method (the executor never pickles the task
function, so ``spawn`` cannot substitute), or when there is at most one
chunk of work.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import pickle
import traceback
from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelTaskError, WorkerCrashError
from repro.faults import get_fault_plan
from repro.obs.exporters import to_snapshot
from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.parallel.shm import (
    DEFAULT_SLAB_BYTES,
    SharedArena,
    arena_enabled_default,
    swizzle,
    unswizzle,
)

#: Exit code an injected worker crash dies with (keeps real segfaults,
#: which report negative signal codes, distinguishable in logs).
CRASH_EXIT_CODE = 73

#: How often (seconds) the supervisor checks worker liveness while
#: waiting for results.
_LIVENESS_POLL_S = 0.05

#: Metric names that measure the transport layer itself. They are the
#: deliberate exception to jobs-determinism (serial runs move zero IPC
#: bytes); strip them before comparing metrics across job counts.
TRANSPORT_METRICS = (
    "repro_parallel_ipc_bytes_total",
    "repro_parallel_shm_bytes_total",
)


def strip_transport_metrics(flat: dict) -> dict:
    """A copy of a flat metrics mapping without the transport counters
    (:data:`TRANSPORT_METRICS`) — the keys that legitimately differ
    between job counts and transports."""
    return {
        key: value for key, value in flat.items()
        if not any(key.startswith(name) for name in TRANSPORT_METRICS)
    }


@dataclass
class TransportStats:
    """What one ``map`` call moved, and how.

    ``mode`` is ``serial`` (no transport), ``pipes`` (pickle over the
    worker pipes) or ``arena`` (descriptors over the pipes, bytes via
    shared memory). ``spilled_bytes`` counts arrays that fell back to
    the pipe because a slab was full.
    """

    mode: str = "serial"
    ipc_bytes: int = 0
    shm_bytes: int = 0
    spilled_bytes: int = 0


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean all cores,
    negatives raise, anything else passes through."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all cores)")
    return jobs


def task_rng(seed: int, index: int) -> np.random.Generator:
    """The deterministic per-task generator: seeded by the pair
    ``(seed, index)``, so it depends only on which task this is — not on
    the worker, the chunking, or the job count."""
    return np.random.default_rng(np.random.SeedSequence([int(seed),
                                                         int(index)]))


def _run_chunk(fn, items, start_index, seed, obs_enabled):
    """Run one chunk under a fresh registry; return (values, snapshot).

    Both the serial path and the forked workers funnel through this, so
    the metric-folding structure is identical in both modes — and so is
    the failure contract: any task exception surfaces as a
    :class:`~repro.errors.ParallelTaskError` carrying the global task
    index and the map seed.
    """
    parent = get_registry()
    registry = MetricsRegistry(enabled=obs_enabled)
    set_registry(registry)
    try:
        values = []
        for offset, item in enumerate(items):
            task_index = start_index + offset
            try:
                if seed is None:
                    values.append(fn(item))
                else:
                    values.append(fn(item, task_rng(seed, task_index)))
            except ParallelTaskError:
                raise
            except Exception as exc:
                raise ParallelTaskError(task_index, seed,
                                        repr(exc)) from exc
    finally:
        set_registry(parent)
    # Snapshot only when there is something to fold: skip when obs is
    # off, when a task disabled the chunk registry mid-run, and when no
    # metric was touched — an empty snapshot pickles to real pipe bytes
    # per chunk and merges as a no-op, so dropping it is free and
    # bit-identical.
    snapshot = None
    if obs_enabled and registry.enabled:
        candidate = to_snapshot(registry)
        if candidate["metrics"]:
            snapshot = candidate
    return values, snapshot


def _dumps(message) -> bytes:
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


class ParallelExecutor:
    """Chunked, deterministic ``map`` over forked worker processes.

    ``jobs`` is the worker count (after :func:`resolve_jobs`);
    ``chunk_size`` tasks are dispatched per worker round-trip. The
    default ``chunk_size=1`` maximizes load balance and makes the
    metric fold order exactly the task order; raise it when per-task
    work is tiny relative to queue overhead.

    ``use_arena`` picks the result transport: ``None`` (default)
    follows ``REPRO_PARALLEL_ARENA`` (on unless set to ``0``/``off``),
    ``True``/``False`` force it. ``arena_bytes`` sizes the whole arena
    (split evenly into per-worker slabs; default 8 MiB per worker).
    The transport never changes results — arrays too large for a slab
    spill to the pipe, and the serial fallback bypasses it entirely.
    """

    def __init__(self, jobs: int | None = 1, chunk_size: int = 1,
                 max_crashes: int = 2, use_arena: bool | None = None,
                 arena_bytes: int | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if max_crashes < 1:
            raise ValueError("max_crashes must be >= 1")
        self.chunk_size = int(chunk_size)
        #: Times one chunk may lose its worker before
        #: :class:`~repro.errors.WorkerCrashError` is raised.
        self.max_crashes = int(max_crashes)
        self.use_arena = (arena_enabled_default() if use_arena is None
                          else bool(use_arena))
        self.arena_bytes = arena_bytes
        #: Transport accounting of the most recent :meth:`map` call.
        self.last_transport = TransportStats()

    # -- public API --------------------------------------------------------
    def map(self, fn, items, seed: int | None = None,
            merge_obs: bool = True) -> list:
        """Apply ``fn`` to every item; results in item order.

        With ``seed`` set, ``fn`` is called as ``fn(item, rng)`` where
        ``rng`` is :func:`task_rng`'s generator for the task's global
        index; without it, as ``fn(item)``. Worker-side metric
        snapshots are merged into the parent registry in chunk order
        unless ``merge_obs=False``. Exceptions in any task propagate
        (wrapped with the worker traceback when forked).
        """
        items = list(items)
        self.last_transport = TransportStats()
        if not items:
            return []
        registry = get_registry()
        obs_enabled = bool(registry.enabled) and merge_obs
        chunks = [
            items[i:i + self.chunk_size]
            for i in range(0, len(items), self.chunk_size)
        ]
        workers = min(self.jobs, len(chunks))
        if workers <= 1 or not fork_available():
            outcomes = [
                _run_chunk(fn, chunk, i * self.chunk_size, seed, obs_enabled)
                for i, chunk in enumerate(chunks)
            ]
        else:
            outcomes = self._map_forked(fn, chunks, seed, obs_enabled,
                                        workers)
            stats = self.last_transport
            if registry.enabled:
                registry.counter(
                    "repro_parallel_ipc_bytes_total",
                    "Bytes moved through executor pipes (control "
                    "messages, descriptors, spilled payloads)",
                ).inc(stats.ipc_bytes)
                if stats.mode == "arena":
                    registry.counter(
                        "repro_parallel_shm_bytes_total",
                        "Result bytes moved via the shared-memory arena "
                        "instead of the pipes",
                    ).inc(stats.shm_bytes)
        results: list = []
        for values, snapshot in outcomes:
            results.extend(values)
            if snapshot is not None:
                registry.merge(snapshot)
        return results

    # -- forked pool -------------------------------------------------------
    def _map_forked(self, fn, chunks, seed, obs_enabled, workers) -> list:
        """Supervised worker pool: the parent dispatches one chunk at a
        time to each worker's private inbox, so it always knows which
        chunk a worker holds, and each worker returns results on its own
        pipe. Per-worker pipes (rather than one shared result queue) are
        what makes the pool crash-safe: ``Connection.send`` has no
        feeder thread and no cross-process write lock, so a worker that
        dies mid-chunk (a real segfault/OOM kill, or an injected
        ``worker_crash`` fault) can never wedge its peers — its death
        just closes the last write end of its pipe, which the parent
        sees as ``EOFError``. The lost chunk is reassigned to a fresh
        replacement worker — up to :attr:`max_crashes` times per chunk,
        after which :class:`~repro.errors.WorkerCrashError` raises.
        Chunks are pure functions of ``(chunk_index, seed)``, so a re-run
        is bit-identical to the run that was lost.

        The same per-slot isolation makes the arena transport
        crash-safe: slabs are pre-partitioned per worker slot (no
        cross-process allocation lock to die holding), a replacement
        worker inherits its slot's slab, and the parent copies results
        out of the arena *before* the owning slot can be handed its next
        chunk — so a worker dying mid-write can only ever scribble on
        slab bytes nobody has read.
        """
        ctx = mp.get_context("fork")
        chunk_size = self.chunk_size
        fault_plan = get_fault_plan()
        stats = self.last_transport
        arena = None
        allocators: list = []
        if self.use_arena:
            total = self.arena_bytes or workers * DEFAULT_SLAB_BYTES
            slab = max(int(total) // workers, 1 << 16)
            try:
                arena = SharedArena(slab * workers)
            except OSError:  # no usable shm backing: stay on pipes
                arena = None
            else:
                allocators = [arena.allocator(i * slab, slab)
                              for i in range(workers)]
        stats.mode = "arena" if arena is not None else "pipes"

        def worker_loop(inbox, conn, allocator) -> None:
            while True:
                message = inbox.get()
                if message is None:
                    conn.close()
                    return
                chunk_index, attempt = message
                if fault_plan.enabled and fault_plan.should_crash(
                        "worker_crash", chunk_index, attempt):
                    # Modeled worker loss: die without flushing anything
                    # (exactly what a kill -9 / XID error looks like).
                    os._exit(CRASH_EXIT_CODE)
                try:
                    values, snapshot = _run_chunk(
                        fn, chunks[chunk_index], chunk_index * chunk_size,
                        seed, obs_enabled,
                    )
                    body = (values, snapshot)
                    moved = spilled = 0
                    if allocator is not None:
                        allocator.reset()
                        body, moved, spilled = swizzle(body, allocator)
                    conn.send_bytes(_dumps(
                        (chunk_index, "ok", body, moved, spilled)))
                except ParallelTaskError as exc:
                    conn.send_bytes(_dumps((
                        chunk_index, "error",
                        (exc.task_index, exc.seed, str(exc.__cause__),
                         traceback.format_exc()), 0, 0,
                    )))
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    conn.send_bytes(_dumps((
                        chunk_index, "error",
                        (chunk_index * chunk_size, seed, repr(exc),
                         traceback.format_exc()), 0, 0,
                    )))

        def spawn(slot):
            inbox = ctx.SimpleQueue()
            reader, writer = ctx.Pipe(duplex=False)
            allocator = allocators[slot] if arena is not None else None
            proc = ctx.Process(target=worker_loop,
                               args=(inbox, writer, allocator),
                               daemon=True)
            proc.start()
            # Close the parent's copy immediately: the worker now holds
            # the only write end, so worker death == EOF on `reader`,
            # and later forks cannot inherit a stray write end that
            # would mask it.
            writer.close()
            return {"proc": proc, "inbox": inbox, "reader": reader,
                    "slot": slot, "chunk": None, "attempt": 0}

        pool = [spawn(slot) for slot in range(workers)]
        pending = list(range(len(chunks) - 1, -1, -1))  # pop() -> in order
        attempts = [0] * len(chunks)
        outcomes: list = [None] * len(chunks)
        completed = 0
        try:
            while completed < len(chunks):
                for state in pool:
                    if state["chunk"] is None and pending:
                        index = pending.pop()
                        state["chunk"] = index
                        state["attempt"] = attempts[index]
                        message = (index, attempts[index])
                        stats.ipc_bytes += len(_dumps(message))
                        state["inbox"].put(message)
                ready = mp_connection.wait(
                    [state["reader"] for state in pool],
                    timeout=_LIVENESS_POLL_S)
                crashed = not ready
                for state in pool:
                    if state["reader"] not in ready:
                        continue
                    try:
                        data = state["reader"].recv_bytes()
                    except EOFError:
                        # Worker died (possibly mid-send); only its own
                        # pipe is affected. Reap below.
                        crashed = True
                        continue
                    stats.ipc_bytes += len(data)
                    chunk_index, status, payload, moved, spilled = \
                        pickle.loads(data)
                    if status == "error":
                        task_index, task_seed, cause, worker_tb = payload
                        raise ParallelTaskError(
                            task_index, task_seed, cause,
                            worker_traceback=worker_tb)
                    state["chunk"] = None
                    if outcomes[chunk_index] is None:
                        # Copy descriptors out of the arena *now*: this
                        # worker's slab is reused the moment it gets its
                        # next chunk, which can only happen after this
                        # loop iteration.
                        if arena is not None:
                            payload = unswizzle(payload, arena, copy=True)
                            stats.shm_bytes += moved
                            stats.spilled_bytes += spilled
                        outcomes[chunk_index] = payload
                        completed += 1
                if crashed:
                    pool = self._reap_crashed(pool, pending, attempts,
                                              fault_plan, spawn)
            for state in pool:
                stats.ipc_bytes += len(_dumps(None))
                state["inbox"].put(None)
            for state in pool:
                state["proc"].join(timeout=5.0)
        finally:
            for state in pool:
                if state["proc"].is_alive():
                    state["proc"].terminate()
                    state["proc"].join()
                if not state["reader"].closed:
                    state["reader"].close()
            if arena is not None:
                arena.close()
        return outcomes

    def _reap_crashed(self, pool, pending, attempts, fault_plan,
                      spawn) -> list:
        """Replace dead workers in place; requeue and re-budget their
        chunks. Replacements take the dead worker's pool slot *before*
        any budget-exhaustion raise, so the caller's cleanup always sees
        every process it must terminate."""
        for slot, state in enumerate(pool):
            if state["proc"].is_alive():
                continue
            state["proc"].join()
            if not state["reader"].closed:
                state["reader"].close()
            pool[slot] = spawn(state["slot"])
            chunk_index = state["chunk"]
            if chunk_index is None:
                continue
            attempts[chunk_index] += 1
            if fault_plan.enabled:
                fault_plan.record("worker_crash", chunk_index,
                                  state["attempt"], "crash")
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "repro_parallel_worker_crashes_total",
                    "Worker processes lost and replaced mid-map",
                ).inc()
            if attempts[chunk_index] > self.max_crashes:
                raise WorkerCrashError(chunk_index,
                                       attempts[chunk_index])
            pending.append(chunk_index)
        return pool


def parallel_map(fn, items, jobs: int | None = 1, chunk_size: int = 1,
                 seed: int | None = None, merge_obs: bool = True,
                 max_crashes: int = 2, use_arena: bool | None = None,
                 arena_bytes: int | None = None) -> list:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    executor = ParallelExecutor(jobs=jobs, chunk_size=chunk_size,
                                max_crashes=max_crashes,
                                use_arena=use_arena,
                                arena_bytes=arena_bytes)
    return executor.map(fn, items, seed=seed, merge_obs=merge_obs)
