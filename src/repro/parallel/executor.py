"""Fork-based process-pool executor with deterministic semantics.

The engine behind ``--jobs N``: it shards a list of independent tasks
(experiment figures, per-trainer epoch lanes, serving sweep points)
across worker processes while keeping every observable output —
results, per-task random streams, merged metrics — **independent of the
job count**. ``jobs=4`` must be a pure wall-clock optimization; the
determinism tests in ``tests/test_parallel.py`` hold it to that.

How jobs-independence is achieved:

* **Per-task seeding.** Each task's RNG derives from
  ``(seed, task_index)`` via :func:`task_rng`, never from the worker
  that happens to run it.
* **Inherited closures, queued indices.** Workers are forked, so the
  function and items are inherited memory — only *chunk indices* go to
  workers and only (picklable) results come back. This lets callers
  pass closures over datasets without pickling either.
* **Ordered metric folding.** Every chunk — serial or parallel — runs
  against a fresh worker-side :class:`~repro.obs.registry.MetricsRegistry`
  whose snapshot the parent merges *in chunk order* after all chunks
  finish. The serial fallback runs the exact same fresh-registry
  chunk protocol, so ``jobs=1`` and ``jobs=N`` fold identical
  floating-point sums in identical order.

The serial fallback engages when ``jobs <= 1``, when the platform lacks
the ``fork`` start method (the executor never pickles the task
function, so ``spawn`` cannot substitute), or when there is at most one
chunk of work.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback

import numpy as np

from repro.obs.exporters import to_snapshot
from repro.obs.registry import MetricsRegistry, get_registry, set_registry


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean all cores,
    negatives raise, anything else passes through."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all cores)")
    return jobs


def task_rng(seed: int, index: int) -> np.random.Generator:
    """The deterministic per-task generator: seeded by the pair
    ``(seed, index)``, so it depends only on which task this is — not on
    the worker, the chunking, or the job count."""
    return np.random.default_rng(np.random.SeedSequence([int(seed),
                                                         int(index)]))


def _run_chunk(fn, items, start_index, seed, obs_enabled):
    """Run one chunk under a fresh registry; return (values, snapshot).

    Both the serial path and the forked workers funnel through this, so
    the metric-folding structure is identical in both modes.
    """
    parent = get_registry()
    registry = MetricsRegistry(enabled=obs_enabled)
    set_registry(registry)
    try:
        values = []
        for offset, item in enumerate(items):
            if seed is None:
                values.append(fn(item))
            else:
                values.append(fn(item, task_rng(seed, start_index + offset)))
    finally:
        set_registry(parent)
    snapshot = to_snapshot(registry) if obs_enabled else None
    return values, snapshot


class ParallelExecutor:
    """Chunked, deterministic ``map`` over forked worker processes.

    ``jobs`` is the worker count (after :func:`resolve_jobs`);
    ``chunk_size`` tasks are dispatched per worker round-trip. The
    default ``chunk_size=1`` maximizes load balance and makes the
    metric fold order exactly the task order; raise it when per-task
    work is tiny relative to queue overhead.
    """

    def __init__(self, jobs: int | None = 1, chunk_size: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)

    # -- public API --------------------------------------------------------
    def map(self, fn, items, seed: int | None = None,
            merge_obs: bool = True) -> list:
        """Apply ``fn`` to every item; results in item order.

        With ``seed`` set, ``fn`` is called as ``fn(item, rng)`` where
        ``rng`` is :func:`task_rng`'s generator for the task's global
        index; without it, as ``fn(item)``. Worker-side metric
        snapshots are merged into the parent registry in chunk order
        unless ``merge_obs=False``. Exceptions in any task propagate
        (wrapped with the worker traceback when forked).
        """
        items = list(items)
        if not items:
            return []
        registry = get_registry()
        obs_enabled = bool(registry.enabled) and merge_obs
        chunks = [
            items[i:i + self.chunk_size]
            for i in range(0, len(items), self.chunk_size)
        ]
        workers = min(self.jobs, len(chunks))
        if workers <= 1 or not fork_available():
            outcomes = [
                _run_chunk(fn, chunk, i * self.chunk_size, seed, obs_enabled)
                for i, chunk in enumerate(chunks)
            ]
        else:
            outcomes = self._map_forked(fn, chunks, seed, obs_enabled,
                                        workers)
        results: list = []
        for values, snapshot in outcomes:
            results.extend(values)
            if snapshot is not None:
                registry.merge(snapshot)
        return results

    # -- forked pool -------------------------------------------------------
    def _map_forked(self, fn, chunks, seed, obs_enabled, workers) -> list:
        ctx = mp.get_context("fork")
        task_queue = ctx.SimpleQueue()
        result_queue = ctx.SimpleQueue()
        chunk_size = self.chunk_size

        def worker() -> None:
            while True:
                chunk_index = task_queue.get()
                if chunk_index is None:
                    return
                try:
                    values, snapshot = _run_chunk(
                        fn, chunks[chunk_index], chunk_index * chunk_size,
                        seed, obs_enabled,
                    )
                    result_queue.put((chunk_index, "ok", (values, snapshot)))
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    result_queue.put(
                        (chunk_index, "error",
                         (repr(exc), traceback.format_exc()))
                    )

        procs = [ctx.Process(target=worker, daemon=True)
                 for _ in range(workers)]
        outcomes: list = [None] * len(chunks)
        try:
            for index in range(len(chunks)):
                task_queue.put(index)
            for _ in range(workers):
                task_queue.put(None)
            for proc in procs:
                proc.start()
            for _ in range(len(chunks)):
                chunk_index, status, payload = result_queue.get()
                if status == "error":
                    message, worker_tb = payload
                    raise RuntimeError(
                        f"parallel task chunk {chunk_index} failed: "
                        f"{message}\n--- worker traceback ---\n{worker_tb}"
                    )
                outcomes[chunk_index] = payload
            for proc in procs:
                proc.join()
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join()
        return outcomes


def parallel_map(fn, items, jobs: int | None = 1, chunk_size: int = 1,
                 seed: int | None = None, merge_obs: bool = True) -> list:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    executor = ParallelExecutor(jobs=jobs, chunk_size=chunk_size)
    return executor.map(fn, items, seed=seed, merge_obs=merge_obs)
