"""Shared-memory arena: the zero-copy substrate under ``--jobs N``.

The fork-pool executor's original transport pickled every result payload
through a pipe — at epoch scale that means feature blocks and gathered
rows crossing the kernel twice (serialize + copy). This module provides
the arena that removes those bytes from the pipes:

* :class:`SharedArena` — one ``multiprocessing.shared_memory`` segment.
  The parent creates it before forking, so workers inherit the mapping;
  any process can also :meth:`~SharedArena.attach` by name.
* :class:`ArenaRef` — the ``(offset, shape, dtype)`` descriptor that
  crosses the pipe *instead of* the array bytes. ``arena.view(ref)``
  reconstructs the ndarray as a zero-copy view (or a defensive copy).
* :class:`BumpAllocator` — a region of the arena with bump allocation.
  Each worker slot owns a private slab (no cross-process locks, so a
  worker dying mid-write can never wedge its peers or the parent), reset
  at every chunk boundary.
* :func:`swizzle` / :func:`unswizzle` — walk a result structure (dicts,
  lists, tuples), moving every large ndarray into the arena on the way
  out and materialising it back on the way in. Arrays that do not fit
  the slab spill to the pipe inline, so the transport degrades instead
  of failing.

Determinism contract: the arena is a *transport*, never a semantics
knob. ``unswizzle`` copies by default, so results are plain ndarrays
bit-identical to what the pipe transport (or the serial fallback) would
have produced, and slab reuse can never alias into a result the caller
already holds.

The feature-matrix / CSR-buffer use case (and ``repro.storage``'s page
store pool) goes through the same primitives: put the big read-only
arrays into the arena once, hand descriptors around, view them
zero-copy from any worker.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

#: Offsets are aligned to cache lines; also satisfies every numpy dtype.
_ALIGN = 64

#: ndarrays smaller than this ride the pipe inline — a descriptor plus
#: page-faulting a fresh shm page costs more than pickling a few bytes.
MIN_ARENA_BYTES = 1024

#: Environment toggle for the executor's default transport: unset means
#: "auto" (arena on whenever forking), ``0``/``off`` disables it.
ARENA_ENV_VAR = "REPRO_PARALLEL_ARENA"

#: Default per-worker result slab (bytes); override per executor.
DEFAULT_SLAB_BYTES = 8 * 1024 * 1024


def arena_enabled_default() -> bool:
    """Resolve :data:`ARENA_ENV_VAR`: on unless explicitly disabled."""
    value = os.environ.get(ARENA_ENV_VAR, "").strip().lower()
    return value not in ("0", "off", "false", "no")


@dataclass(frozen=True)
class ArenaRef:
    """Descriptor of one ndarray living in a :class:`SharedArena`.

    This — not the bytes — is what crosses the pipe: ``(arena offset,
    shape, dtype str)`` for a C-contiguous array. ``dtype`` is the numpy
    dtype string (e.g. ``'<f4'``), which round-trips byte order.
    """

    offset: int
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


class SharedArena:
    """One shared-memory segment plus descriptor-based array access."""

    def __init__(self, nbytes: int = 0, name: str | None = None,
                 create: bool = True) -> None:
        if create and nbytes <= 0:
            raise ValueError("a created arena needs a positive size")
        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=nbytes if create else 0)
        self._owner = bool(create)
        #: Forked workers inherit the owning object; only the creating
        #: *process* may unlink, or a worker exit would tear the segment
        #: out from under the parent.
        self._owner_pid = os.getpid()
        self._closed = False

    @classmethod
    def attach(cls, name: str) -> "SharedArena":
        """Map an existing arena by name (non-owning)."""
        return cls(name=name, create=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    def allocator(self, start: int = 0,
                  size: int | None = None) -> "BumpAllocator":
        """A bump allocator over ``[start, start + size)`` of this arena."""
        return BumpAllocator(self, start, self.nbytes - start
                             if size is None else size)

    def put(self, array: np.ndarray, offset: int) -> ArenaRef:
        """Copy ``array`` into the arena at ``offset``; return its ref."""
        shape = tuple(np.asarray(array).shape)
        # ascontiguousarray promotes 0-d to 1-d; keep the true shape.
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise TypeError("object dtypes cannot live in shared memory")
        end = offset + array.nbytes
        if not 0 <= offset <= end <= self.nbytes:
            raise ValueError(
                f"allocation [{offset}, {end}) outside arena of "
                f"{self.nbytes} bytes")
        destination = np.ndarray(array.shape, dtype=array.dtype,
                                 buffer=self._shm.buf, offset=offset)
        destination[...] = array
        return ArenaRef(offset, shape, array.dtype.str)

    def view(self, ref: ArenaRef, copy: bool = False) -> np.ndarray:
        """Materialise a descriptor: zero-copy view, or a private copy.

        Callers that outlive the next slab reset (anything returning
        results upward) must take ``copy=True`` — the executor does.
        """
        if ref.offset + ref.nbytes > self.nbytes:
            raise ValueError(f"descriptor {ref} outside arena of "
                             f"{self.nbytes} bytes")
        array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                           buffer=self._shm.buf, offset=ref.offset)
        return array.copy() if copy else array

    def close(self) -> None:
        """Unmap (and unlink, when owning) the segment. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner and os.getpid() == self._owner_pid:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


class BumpAllocator:
    """Bump allocation over a private region of a :class:`SharedArena`.

    Each executor worker slot owns one: allocation is a cursor add (no
    locks to leak on crash), :meth:`reset` at a chunk boundary reclaims
    the whole slab at once. A full slab returns ``None`` from
    :meth:`put` — callers spill to the pipe instead of failing.
    """

    def __init__(self, arena: SharedArena, start: int, size: int) -> None:
        if start < 0 or size < 0 or start + size > arena.nbytes:
            raise ValueError(
                f"slab [{start}, {start + size}) outside arena of "
                f"{arena.nbytes} bytes")
        self.arena = arena
        self.start = int(start)
        self.size = int(size)
        self._cursor = self.start

    @property
    def used(self) -> int:
        return self._cursor - self.start

    @property
    def remaining(self) -> int:
        return self.start + self.size - self._aligned(self._cursor)

    @staticmethod
    def _aligned(offset: int) -> int:
        return (offset + _ALIGN - 1) // _ALIGN * _ALIGN

    def reset(self) -> None:
        self._cursor = self.start

    def put(self, array: np.ndarray) -> ArenaRef | None:
        """Copy ``array`` into the slab; ``None`` when it does not fit."""
        offset = self._aligned(self._cursor)
        end = offset + int(array.nbytes)
        if end > self.start + self.size:
            return None
        ref = self.arena.put(array, offset)
        self._cursor = end
        return ref


def swizzle(obj, allocator: BumpAllocator,
            min_bytes: int = MIN_ARENA_BYTES) -> tuple:
    """Replace large ndarrays inside ``obj`` with :class:`ArenaRef`\\ s.

    Walks dicts, lists and tuples (incl. namedtuples) recursively;
    ndarrays of at least ``min_bytes`` whose dtype is shareable move
    into the allocator's slab. Returns ``(swizzled, moved_bytes,
    spilled_bytes)`` — ``spilled_bytes`` counts arrays that stayed
    inline because the slab was full.
    """
    moved = 0
    spilled = 0

    def walk(x):
        nonlocal moved, spilled
        if isinstance(x, np.ndarray):
            if x.dtype.hasobject or x.nbytes < min_bytes:
                return x
            ref = allocator.put(x)
            if ref is None:
                spilled += int(x.nbytes)
                return x
            moved += int(x.nbytes)
            return ref
        if isinstance(x, dict):
            return {key: walk(value) for key, value in x.items()}
        if isinstance(x, tuple):
            walked = [walk(value) for value in x]
            if hasattr(x, "_fields"):  # namedtuple
                return type(x)(*walked)
            return tuple(walked)
        if isinstance(x, list):
            return [walk(value) for value in x]
        return x

    return walk(obj), moved, spilled


def unswizzle(obj, arena: SharedArena, copy: bool = True):
    """Materialise every :class:`ArenaRef` inside ``obj`` back into an
    ndarray. The default ``copy=True`` detaches results from the arena
    so slab reuse can never mutate them retroactively."""

    def walk(x):
        if isinstance(x, ArenaRef):
            return arena.view(x, copy=copy)
        if isinstance(x, dict):
            return {key: walk(value) for key, value in x.items()}
        if isinstance(x, tuple):
            walked = [walk(value) for value in x]
            if hasattr(x, "_fields"):
                return type(x)(*walked)
            return tuple(walked)
        if isinstance(x, list):
            return [walk(value) for value in x]
        return x

    return walk(obj)
