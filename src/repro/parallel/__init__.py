"""Multi-core execution engine (``--jobs N``).

See :mod:`repro.parallel.executor` for the determinism contract: job
count changes wall-clock only, never results, random streams, or merged
metrics (transport byte counters excepted — they measure the transport
itself; see :func:`strip_transport_metrics`). The supervised pool also
survives worker loss: crashed workers (real or injected via the
``worker_crash`` fault site) are replaced and their chunks reassigned,
bit-identically, up to a per-chunk crash budget.

Result payloads ride the zero-copy shared-memory arena of
:mod:`repro.parallel.shm` by default — descriptors over the pipes,
never bytes — with ``REPRO_PARALLEL_ARENA=0`` restoring pure pickled
pipes.
"""

from repro.errors import ParallelTaskError, WorkerCrashError
from repro.parallel.executor import (
    CRASH_EXIT_CODE,
    TRANSPORT_METRICS,
    ParallelExecutor,
    TransportStats,
    fork_available,
    parallel_map,
    resolve_jobs,
    strip_transport_metrics,
    task_rng,
)
from repro.parallel.shm import (
    ARENA_ENV_VAR,
    MIN_ARENA_BYTES,
    ArenaRef,
    BumpAllocator,
    SharedArena,
    arena_enabled_default,
    swizzle,
    unswizzle,
)

__all__ = [
    "ARENA_ENV_VAR",
    "ArenaRef",
    "BumpAllocator",
    "CRASH_EXIT_CODE",
    "MIN_ARENA_BYTES",
    "ParallelExecutor",
    "ParallelTaskError",
    "SharedArena",
    "TRANSPORT_METRICS",
    "TransportStats",
    "WorkerCrashError",
    "arena_enabled_default",
    "fork_available",
    "parallel_map",
    "resolve_jobs",
    "strip_transport_metrics",
    "swizzle",
    "task_rng",
    "unswizzle",
]
