"""Multi-core execution engine (``--jobs N``).

See :mod:`repro.parallel.executor` for the determinism contract: job
count changes wall-clock only, never results, random streams, or merged
metrics. The supervised pool also survives worker loss: crashed workers
(real or injected via the ``worker_crash`` fault site) are replaced and
their chunks reassigned, bit-identically, up to a per-chunk crash
budget.
"""

from repro.errors import ParallelTaskError, WorkerCrashError
from repro.parallel.executor import (
    CRASH_EXIT_CODE,
    ParallelExecutor,
    fork_available,
    parallel_map,
    resolve_jobs,
    task_rng,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ParallelExecutor",
    "ParallelTaskError",
    "WorkerCrashError",
    "fork_available",
    "parallel_map",
    "resolve_jobs",
    "task_rng",
]
