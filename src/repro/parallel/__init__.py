"""Multi-core execution engine (``--jobs N``).

See :mod:`repro.parallel.executor` for the determinism contract: job
count changes wall-clock only, never results, random streams, or merged
metrics.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    fork_available,
    parallel_map,
    resolve_jobs,
    task_rng,
)

__all__ = [
    "ParallelExecutor",
    "fork_available",
    "parallel_map",
    "resolve_jobs",
    "task_rng",
]
